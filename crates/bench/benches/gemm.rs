//! Real-throughput GEMM kernel benchmarks (backs Figs. 8 and 15).
//!
//! Two parts:
//!
//! 1. A criterion group comparing the whole kernel ladder — naive,
//!    blocked, band-parallel, packed, packed-parallel, the `gemm_auto`
//!    dispatcher, and the Tensor-Core (through-f16) variant — at small
//!    and medium sizes.
//! 2. A headline measurement at 256/512/1024 cubed, over both an f32
//!    carrier and the u64 ring carrier secure training runs on,
//!    comparing the seed production kernel (`gemm_blocked`) against the
//!    packed paths, — where the host tile unit verifies — the
//!    limb-split quantized ring kernel, and the host backend's real
//!    mixed-precision paths (`host_f16` through the F16C unit,
//!    `host_int8` over the int8 tile pipeline). Each kernel entry is
//!    tagged with its compute backend (`"sim"` / `"host"`). Written to
//!    `BENCH_gemm.json` (a `psml.bench.gemm.v1` document) at the
//!    repository root so the speedups are recorded per host.
//!
//! `PSML_SMOKE=1` shrinks the headline to a seconds-scale CI check
//! written to `BENCH_gemm.smoke.json`; both modes assert that the
//! `gemm_auto` dispatcher is never the slowest kernel at any recorded
//! size (the whole point of a dispatcher).

use criterion::{criterion_group, BenchmarkId, Criterion};
use psml_gpu::{kernels, GemmMode};
use psml_tensor::{
    gemm_auto, gemm_blocked, gemm_f16, gemm_int8_scaled, gemm_naive, gemm_packed,
    gemm_packed_parallel, gemm_parallel, gemm_quant, quant_ring_available, Matrix, Num,
};
use std::hint::black_box;
use std::time::Instant;

fn mat(n: usize, seed: u64) -> Matrix<f32> {
    rect(n, n, seed)
}

fn rect(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r as u64 * 31 + c as u64 * 7) ^ seed) % 17) as f32 - 8.0
    })
}

/// Full-range ring elements (every limb populated, as shares are).
fn ring(n: usize, seed: u64) -> Matrix<u64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 0x9E37_79B9_7F4A_7C15) ^ (c as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(seed.wrapping_mul(0x94D0_49BB_1331_11EB))
    })
}

/// The im2col-lowered conv GEMM shape `conv2d_im2col` now routes through
/// `gemm_auto`: batch 16 of 1x28x28 images, 5x5 kernel, 8 filters —
/// `(16*576 x 25) x (25 x 8)`, tall-skinny instead of square.
const CONV_M: usize = 16 * 576;
const CONV_K: usize = 25;
const CONV_N: usize = 8;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[32usize, 64, 128] {
        let a = mat(n, 1);
        let b = mat(n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_naive(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_blocked(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_parallel(&a, &b, 4)))
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_packed(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("packed_parallel", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_packed_parallel(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("auto", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_auto(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("tensor_core_f16", n), &n, |bench, _| {
            bench.iter(|| black_box(kernels::gemm(&a, &b, GemmMode::TensorCore)))
        });
        // The host backend's real mixed-precision paths (F16C rounding /
        // int8 tile pipeline) next to the simulator's functional ladder.
        group.bench_with_input(BenchmarkId::new("host_f16", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_f16(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("host_int8", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_int8_scaled(&a, &b)))
        });
    }
    // Ring carrier at a size past the quant cutover, so the limb-split
    // kernel appears in the criterion ladder next to the packed path.
    if quant_ring_available() {
        let n = 192;
        let a = ring(n, 1);
        let b = ring(n, 2);
        group.bench_with_input(BenchmarkId::new("packed_u64", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_packed(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("quant_u64", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_quant(&a, &b)))
        });
    }
    // Conv-derived shape: the blocked seed kernel vs the dispatcher the
    // im2col path now uses.
    let a = rect(CONV_M, CONV_K, 1);
    let b = rect(CONV_K, CONV_N, 2);
    group.bench_function("conv_im2col/blocked", |bench| {
        bench.iter(|| black_box(gemm_blocked(&a, &b)))
    });
    group.bench_function("conv_im2col/auto", |bench| {
        bench.iter(|| black_box(gemm_auto(&a, &b)))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);

/// A named GEMM kernel closure under measurement, tagged with the
/// compute backend it belongs to: `"sim"` for the simulator's functional
/// ladder (the exact kernels the device model executes), `"host"` for
/// the host backend's real mixed-precision paths.
type NamedKernel<'a, R> = (&'a str, &'static str, Box<dyn FnMut() -> Matrix<R> + 'a>);

/// Host-backend mixed-precision kernels measured alongside the f32
/// ladder: the F16C-rounded Tensor-Core contract and the approximate
/// int8 path over the AMX tile pipeline.
fn f32_host_kernels<'a>(a: &'a Matrix<f32>, b: &'a Matrix<f32>) -> Vec<NamedKernel<'a, f32>> {
    vec![
        ("host_f16", "host", Box::new(move || gemm_f16(a, b))),
        ("host_int8", "host", Box::new(move || gemm_int8_scaled(a, b))),
    ]
}

/// Ring carriers have no approximate paths: every kernel is exact, and
/// the quantized path already appears in the shared ladder.
fn no_host_kernels<'a, R: Num>(_: &'a Matrix<R>, _: &'a Matrix<R>) -> Vec<NamedKernel<'a, R>> {
    Vec::new()
}

/// One timed invocation in seconds.
fn time_once<R>(f: &mut dyn FnMut() -> Matrix<R>) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

/// Best-of-`reps` seconds per kernel with the reps *interleaved* across
/// kernels: the CI hosts are shared VMs whose throughput oscillates ~2x
/// in phases lasting seconds, so back-to-back reps of one kernel can
/// land entirely inside a slow phase. Round-robin sampling gives every
/// kernel a shot at the quiet phases.
fn best_of<R>(kernels: &mut [NamedKernel<R>], reps: usize, gap_ms: u64) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; kernels.len()];
    for rep in 0..reps {
        if rep > 0 {
            // Let a thermally/AVX-license-throttled core recover between
            // rounds so the gaps sample distinct host phases.
            std::thread::sleep(std::time::Duration::from_millis(gap_ms));
        }
        for (slot, (_, _, f)) in kernels.iter_mut().enumerate() {
            best[slot] = best[slot].min(time_once(f));
        }
    }
    best
}

/// Measures one element type's kernel ladder at square sizes, returning
/// a `psml.bench.gemm.v1` element entry. Panics if `gemm_auto` is the
/// slowest kernel at any size — the dispatcher exists to pick a
/// better-than-worst path, so "auto slowest" is always a cutover bug
/// (the `packed_parallel` small-size regression was exactly that).
fn element_entry<R: Num>(
    element: &str,
    sizes: &[usize],
    reps: usize,
    gap_ms: u64,
    make: &dyn Fn(usize, u64) -> Matrix<R>,
    host_kernels: for<'x> fn(&'x Matrix<R>, &'x Matrix<R>) -> Vec<NamedKernel<'x, R>>,
) -> String {
    let quant = R::WRAPPING_U64 && quant_ring_available();
    let mut size_entries = Vec::new();
    for &n in sizes {
        let a = make(n, 1);
        let b = make(n, 2);
        let mut kernels: Vec<NamedKernel<R>> = vec![
            ("blocked", "sim", Box::new(|| gemm_blocked(&a, &b))),
            ("packed", "sim", Box::new(|| gemm_packed(&a, &b))),
            ("packed_parallel", "sim", Box::new(|| gemm_packed_parallel(&a, &b))),
            ("auto", "sim", Box::new(|| gemm_auto(&a, &b))),
        ];
        if quant {
            kernels.push(("quant", "sim", Box::new(|| gemm_quant(&a, &b))));
        }
        kernels.extend(host_kernels(&a, &b));
        let best = best_of(&mut kernels, reps, gap_ms);
        let secs_of = |name: &str| {
            kernels
                .iter()
                .position(|(k, _, _)| *k == name)
                .map(|i| best[i])
        };
        let mut fields = Vec::new();
        for ((name, backend, _), secs) in kernels.iter().zip(&best) {
            println!(
                "gemm headline {element} n={n} {name} [{backend}]: {secs:.4}s ({:.2} GFLOP/s)",
                gflops(n, *secs)
            );
            fields.push(format!(
                "\"{name}\": {{\"backend\": \"{backend}\", \"secs\": {secs:.6}, \
                 \"gflops\": {:.3}}}",
                gflops(n, *secs)
            ));
        }
        let auto_secs = secs_of("auto").expect("auto always measured");
        let slowest = best.iter().cloned().fold(0.0, f64::max);
        // 10% tolerance: at sub-millisecond sizes two kernels can tie
        // within host noise even after best-of sampling.
        assert!(
            auto_secs <= slowest * 1.10,
            "gemm_auto is the slowest kernel at {element} n={n} \
             ({auto_secs:.6}s vs worst {slowest:.6}s): cutover regression"
        );
        let mut speedups = format!(
            ", \"speedup_packed_parallel_vs_blocked\": {:.3}",
            secs_of("blocked").unwrap() / secs_of("packed_parallel").unwrap()
        );
        if let Some(quant_secs) = secs_of("quant") {
            let s = secs_of("packed").unwrap() / quant_secs;
            println!("gemm headline {element} n={n} quant vs packed: {s:.2}x");
            speedups.push_str(&format!(", \"speedup_quant_vs_packed\": {s:.3}"));
        }
        for host_name in ["host_f16", "host_int8"] {
            if let Some(host_secs) = secs_of(host_name) {
                let s = secs_of("packed").unwrap() / host_secs;
                println!("gemm headline {element} n={n} {host_name} vs packed: {s:.2}x");
                speedups.push_str(&format!(", \"speedup_{host_name}_vs_packed\": {s:.3}"));
            }
        }
        size_entries.push(format!(
            "      {{\"n\": {n}, \"kernels\": {{{}}}{speedups}}}",
            fields.join(", ")
        ));
    }
    format!(
        "    {{\"element\": \"{element}\", \"sizes\": [\n{}\n    ]}}",
        size_entries.join(",\n")
    )
}

/// Times the seed kernel against the packed hierarchy (and the
/// limb-split quantized ring kernel, where available) and records the
/// result as a versioned JSON document at the repository root.
fn headline() {
    let smoke = std::env::var_os("PSML_SMOKE").is_some();
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (sizes, reps, gap_ms): (&[usize], usize, u64) = if smoke {
        (&[96, 192], 3, 50)
    } else {
        (&[256, 512, 1024], 8, 250)
    };
    let elements = [
        element_entry("f32", sizes, reps, gap_ms, &mat, f32_host_kernels),
        element_entry("u64", sizes, reps, gap_ms, &ring, no_host_kernels),
    ];
    // Conv-derived (im2col) shape: tall-skinny, where the packed paths'
    // register tiling pays off without any square-size sweet spot.
    let ca = rect(CONV_M, CONV_K, 3);
    let cb = rect(CONV_K, CONV_N, 4);
    let mut conv_kernels: [NamedKernel<f32>; 2] = [
        ("blocked", "sim", Box::new(|| gemm_blocked(&ca, &cb))),
        ("auto", "sim", Box::new(|| gemm_auto(&ca, &cb))),
    ];
    let conv_best = best_of(&mut conv_kernels, if smoke { 3 } else { 8 }, 100);
    let conv_speedup = conv_best[0] / conv_best[1];
    println!(
        "gemm headline conv {CONV_M}x{CONV_K}x{CONV_N} auto vs blocked: {conv_speedup:.2}x \
         (blocked {:.4}s, auto {:.4}s)",
        conv_best[0], conv_best[1]
    );
    let json = format!(
        "{{\n  \"schema\": \"psml.bench.gemm.v1\",\n  \"bench\": \"gemm\",\n  \
         \"host_workers\": {workers},\n  \"quant_ring_available\": {},\n  \
         \"timing\": \"best of {reps} interleaved reps per kernel\",\n  \
         \"conv_im2col\": {{\"m\": {CONV_M}, \"k\": {CONV_K}, \"n\": {CONV_N}, \
         \"blocked_secs\": {:.6}, \"auto_secs\": {:.6}, \
         \"speedup_auto_vs_blocked\": {conv_speedup:.3}}},\n  \"elements\": [\n{}\n  ]\n}}\n",
        quant_ring_available(),
        conv_best[0],
        conv_best[1],
        elements.join(",\n")
    );
    // crates/bench -> repo root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf();
    let name = if smoke {
        "BENCH_gemm.smoke.json"
    } else {
        "BENCH_gemm.json"
    };
    let out = root.join(name);
    std::fs::write(&out, json).expect("write gemm bench document");
    println!("wrote {}", out.display());
}

fn main() {
    // Headline first: minutes of sustained criterion sampling heats the
    // (shared, AVX-512-throttled) host and would depress the recorded
    // peak numbers for every kernel. PSML_HEADLINE_ONLY=1 skips the
    // criterion ladder for quick re-measurement; PSML_SMOKE=1 also
    // skips it and shrinks the headline itself.
    headline();
    if std::env::var_os("PSML_HEADLINE_ONLY").is_none()
        && std::env::var_os("PSML_SMOKE").is_none()
    {
        benches();
    }
}

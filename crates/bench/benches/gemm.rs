//! Real-throughput GEMM kernel benchmarks (backs Figs. 8 and 15).
//!
//! Two parts:
//!
//! 1. A criterion group comparing the whole kernel ladder — naive,
//!    blocked, band-parallel, packed, packed-parallel, the `gemm_auto`
//!    dispatcher, and the Tensor-Core (through-f16) variant — at small
//!    and medium sizes.
//! 2. A headline measurement at 256/512/1024 cubed f32 comparing the
//!    seed production kernel (`gemm_blocked`) against the packed paths,
//!    written to `BENCH_gemm.json` at the repository root so the
//!    speedup is recorded per host.

use criterion::{criterion_group, BenchmarkId, Criterion};
use psml_gpu::{kernels, GemmMode};
use psml_tensor::{
    gemm_auto, gemm_blocked, gemm_naive, gemm_packed, gemm_packed_parallel, gemm_parallel,
    Matrix,
};
use std::hint::black_box;
use std::time::Instant;

fn mat(n: usize, seed: u64) -> Matrix<f32> {
    rect(n, n, seed)
}

fn rect(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    Matrix::from_fn(rows, cols, |r, c| {
        (((r as u64 * 31 + c as u64 * 7) ^ seed) % 17) as f32 - 8.0
    })
}

/// The im2col-lowered conv GEMM shape `conv2d_im2col` now routes through
/// `gemm_auto`: batch 16 of 1x28x28 images, 5x5 kernel, 8 filters —
/// `(16*576 x 25) x (25 x 8)`, tall-skinny instead of square.
const CONV_M: usize = 16 * 576;
const CONV_K: usize = 25;
const CONV_N: usize = 8;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[32usize, 64, 128] {
        let a = mat(n, 1);
        let b = mat(n, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_naive(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_blocked(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_parallel(&a, &b, 4)))
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_packed(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("packed_parallel", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_packed_parallel(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("auto", n), &n, |bench, _| {
            bench.iter(|| black_box(gemm_auto(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("tensor_core_f16", n), &n, |bench, _| {
            bench.iter(|| black_box(kernels::gemm(&a, &b, GemmMode::TensorCore)))
        });
    }
    // Conv-derived shape: the blocked seed kernel vs the dispatcher the
    // im2col path now uses.
    let a = rect(CONV_M, CONV_K, 1);
    let b = rect(CONV_K, CONV_N, 2);
    group.bench_function("conv_im2col/blocked", |bench| {
        bench.iter(|| black_box(gemm_blocked(&a, &b)))
    });
    group.bench_function("conv_im2col/auto", |bench| {
        bench.iter(|| black_box(gemm_auto(&a, &b)))
    });
    group.finish();
}

criterion_group!(benches, bench_gemm);

/// A named GEMM kernel closure under measurement.
type NamedKernel<'a> = (&'a str, Box<dyn FnMut() -> Matrix<f32> + 'a>);

/// One timed invocation in seconds.
fn time_once(f: &mut dyn FnMut() -> Matrix<f32>) -> f64 {
    let t = Instant::now();
    black_box(f());
    t.elapsed().as_secs_f64()
}

fn gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

/// Times the seed kernel against the packed hierarchy at square f32
/// sizes and records the result as JSON at the repository root.
fn headline() {
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut size_entries = Vec::new();
    for &n in &[256usize, 512, 1024] {
        let a = mat(n, 1);
        let b = mat(n, 2);
        // Best-of-8 with the reps *interleaved* across kernels: the CI
        // hosts are shared VMs whose throughput oscillates ~2x in phases
        // lasting seconds, so back-to-back reps of one kernel can land
        // entirely inside a slow phase. Round-robin sampling gives every
        // kernel a shot at the quiet phases.
        const REPS: usize = 8;
        let mut kernels: [NamedKernel; 4] = [
            ("blocked", Box::new(|| gemm_blocked(&a, &b))),
            ("packed", Box::new(|| gemm_packed(&a, &b))),
            ("packed_parallel", Box::new(|| gemm_packed_parallel(&a, &b))),
            ("auto", Box::new(|| gemm_auto(&a, &b))),
        ];
        let mut best = [f64::INFINITY; 4];
        for rep in 0..REPS {
            if rep > 0 {
                // Let a thermally/AVX-license-throttled core recover between
                // rounds so the gaps sample distinct host phases.
                std::thread::sleep(std::time::Duration::from_millis(250));
            }
            for (slot, (_, f)) in kernels.iter_mut().enumerate() {
                best[slot] = best[slot].min(time_once(f));
            }
        }
        let mut fields = Vec::new();
        let mut blocked_secs = 0.0;
        let mut packed_parallel_secs = 0.0;
        for ((name, _), secs) in kernels.iter().zip(best) {
            println!(
                "gemm headline n={n} {name}: {secs:.4}s ({:.2} GFLOP/s)",
                gflops(n, secs)
            );
            if *name == "blocked" {
                blocked_secs = secs;
            }
            if *name == "packed_parallel" {
                packed_parallel_secs = secs;
            }
            fields.push(format!(
                "\"{name}\": {{\"secs\": {secs:.6}, \"gflops\": {:.3}}}",
                gflops(n, secs)
            ));
        }
        let speedup = blocked_secs / packed_parallel_secs;
        println!("gemm headline n={n} packed_parallel vs blocked: {speedup:.2}x");
        size_entries.push(format!(
            "    {{\"n\": {n}, \"kernels\": {{{}}}, \"speedup_packed_parallel_vs_blocked\": {speedup:.3}}}",
            fields.join(", ")
        ));
    }
    // Conv-derived (im2col) shape: tall-skinny, where the packed paths'
    // register tiling pays off without any square-size sweet spot.
    let ca = rect(CONV_M, CONV_K, 3);
    let cb = rect(CONV_K, CONV_N, 4);
    let mut conv_kernels: [NamedKernel; 2] = [
        ("blocked", Box::new(|| gemm_blocked(&ca, &cb))),
        ("auto", Box::new(|| gemm_auto(&ca, &cb))),
    ];
    let mut conv_best = [f64::INFINITY; 2];
    for rep in 0..8 {
        if rep > 0 {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        for (slot, (_, f)) in conv_kernels.iter_mut().enumerate() {
            conv_best[slot] = conv_best[slot].min(time_once(f));
        }
    }
    let conv_speedup = conv_best[0] / conv_best[1];
    println!(
        "gemm headline conv {CONV_M}x{CONV_K}x{CONV_N} auto vs blocked: {conv_speedup:.2}x \
         (blocked {:.4}s, auto {:.4}s)",
        conv_best[0], conv_best[1]
    );
    let conv_entry = format!(
        "  \"conv_im2col\": {{\"m\": {CONV_M}, \"k\": {CONV_K}, \"n\": {CONV_N}, \
         \"blocked_secs\": {:.6}, \"auto_secs\": {:.6}, \"speedup_auto_vs_blocked\": {conv_speedup:.3}}},\n",
        conv_best[0], conv_best[1]
    );
    let json = format!(
        "{{\n  \"bench\": \"gemm\",\n  \"element\": \"f32\",\n  \"host_workers\": {workers},\n  \"timing\": \"best of 8 interleaved reps per kernel\",\n{conv_entry}  \"sizes\": [\n{}\n  ]\n}}\n",
        size_entries.join(",\n")
    );
    // crates/bench -> repo root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf();
    let out = root.join("BENCH_gemm.json");
    std::fs::write(&out, json).expect("write BENCH_gemm.json");
    println!("wrote {}", out.display());
}

fn main() {
    // Headline first: minutes of sustained criterion sampling heats the
    // (shared, AVX-512-throttled) host and would depress the recorded
    // peak numbers for every kernel. PSML_HEADLINE_ONLY=1 skips the
    // criterion ladder for quick re-measurement.
    headline();
    if std::env::var_os("PSML_HEADLINE_ONLY").is_none() {
        benches();
    }
}

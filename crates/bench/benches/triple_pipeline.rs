//! End-to-end wall-clock benefit of the asynchronous Beaver-triple
//! provisioning pipeline (the paper's Fig. 5/6 offline/online overlap,
//! on the host side).
//!
//! Measures real elapsed time for the same secure MLP training steps with
//! `prefetch` off (triples generated and *really* serialized through the
//! fault-free wire path at each multiplication) and on (triples generated
//! ahead by the provider thread from counter-derived streams, with the
//! distribution charged through the accounted fast path — byte-for-byte
//! the same simulated time and traffic, none of the serialization work).
//! The two runs must agree bit-for-bit on every revealed prediction;
//! the result goes to `BENCH_triple.json` (`psml.bench.triple.v1`).
//!
//! `PSML_SMOKE=1` shrinks the workload to a seconds-scale CI check (the
//! speedup is then informational only — tiny runs are dominated by
//! fixed costs).

use parsecureml::prelude::*;
use std::hint::black_box;
use std::time::Instant;

const SEED: u32 = 4242;

struct Workload {
    features: usize,
    batch: usize,
    steps: usize,
    reps: usize,
}

fn workload() -> Workload {
    if std::env::var_os("PSML_SMOKE").is_some() {
        Workload {
            features: 512,
            batch: 2,
            steps: 2,
            reps: 2,
        }
    } else {
        Workload {
            features: 4096,
            batch: 2,
            steps: 4,
            reps: 5,
        }
    }
}

fn config(prefetch: bool) -> EngineConfig {
    if prefetch {
        EngineConfig::parsecureml().with_prefetch(true)
    } else {
        // Fresh triples either way — prefetch provisions one triple per
        // multiplication, so the comparable baseline regenerates too.
        EngineConfig::parsecureml().with_insecure_reuse_triples(false)
    }
}

/// One full run: `steps` training steps + a final inference. Returns the
/// elapsed wall-clock seconds and the revealed predictions.
fn run(w: &Workload, prefetch: bool) -> (f64, PlainMatrix) {
    let spec = ModelSpec::build(ModelKind::Mlp, w.features, None, 10).expect("spec");
    let x = PlainMatrix::from_fn(w.batch, w.features, |r, c| {
        ((r * 37 + c * 11) % 23) as f64 * 0.02 - 0.2
    });
    let y = PlainMatrix::from_fn(w.batch, 10, |r, c| if c == r % 10 { 1.0 } else { 0.0 });
    let t = Instant::now();
    let mut trainer =
        SecureTrainer::<Fixed64>::new(config(prefetch), spec, SEED).expect("trainer");
    for _ in 0..w.steps {
        black_box(trainer.train_batch(&x, &y).expect("train step"));
    }
    let out = trainer
        .infer_request(&InferRequest::new(x.clone()))
        .expect("infer")
        .output;
    (t.elapsed().as_secs_f64(), out)
}

fn main() {
    let w = workload();
    println!(
        "triple pipeline bench: MLP {}->128->64->10, batch {}, {} steps, best of {} reps",
        w.features, w.batch, w.steps, w.reps
    );

    // Warm-up run per mode (page in code + data, spin up the pool).
    let (_, base_off) = run(&w, false);
    let (_, base_on) = run(&w, true);
    assert_eq!(
        base_on, base_off,
        "prefetch changed revealed predictions — determinism broken"
    );

    // Best-of-N with modes interleaved: shared hosts drift in phases
    // longer than one run, so round-robin sampling keeps the comparison
    // honest.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for rep in 0..w.reps {
        let (t_off, out_off) = run(&w, false);
        let (t_on, out_on) = run(&w, true);
        assert_eq!(out_on, out_off, "rep {rep}: predictions diverged");
        best_off = best_off.min(t_off);
        best_on = best_on.min(t_on);
        println!("rep {rep}: off {t_off:.3}s, on {t_on:.3}s");
    }

    let speedup = best_off / best_on;
    println!(
        "triple pipeline headline: prefetch off {best_off:.3}s, on {best_on:.3}s -> {speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"schema\": \"psml.bench.triple.v1\",\n  \"bench\": \"triple_pipeline\",\n  \"model\": \"MLP {}->128->64->10\",\n  \"batch\": {},\n  \"steps\": {},\n  \"timing\": \"best of {} interleaved reps\",\n  \"smoke\": {},\n  \"prefetch_off_ms\": {:.3},\n  \"prefetch_on_ms\": {:.3},\n  \"speedup\": {speedup:.3},\n  \"identical_results\": true\n}}\n",
        w.features,
        w.batch,
        w.steps,
        w.reps,
        std::env::var_os("PSML_SMOKE").is_some(),
        best_off * 1e3,
        best_on * 1e3,
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf();
    // Smoke runs go to a scratch file so CI never clobbers the committed
    // full-workload measurement.
    let name = if std::env::var_os("PSML_SMOKE").is_some() {
        "BENCH_triple.smoke.json"
    } else {
        "BENCH_triple.json"
    };
    let out = root.join(name);
    std::fs::write(&out, json).expect("write triple bench JSON");
    println!("wrote {}", out.display());
}

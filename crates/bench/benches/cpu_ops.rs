//! CPU-parallelism kernel benchmarks (backs Fig. 14): serial vs
//! cache-line-chunked parallel matrix add/sub, the Sec. 5.1 operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psml_parallel::{for_each_chunk_mut, CACHE_LINE_F32};
use psml_tensor::Matrix;
use std::hint::black_box;

fn bench_cpu_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[64usize, 256, 512] {
        let a = Matrix::<f32>::from_fn(n, n, |r, c| (r + c) as f32);
        let b = Matrix::<f32>::from_fn(n, n, |r, c| (r * c % 13) as f32);
        group.bench_with_input(BenchmarkId::new("add_serial", n), &n, |bench, _| {
            bench.iter(|| black_box(a.add(&b)))
        });
        group.bench_with_input(BenchmarkId::new("add_parallel_chunked", n), &n, |bench, &n| {
            bench.iter(|| {
                let mut out = vec![0f32; n * n];
                let (asl, bsl) = (a.as_slice(), b.as_slice());
                for_each_chunk_mut(&mut out, 4, CACHE_LINE_F32, |off, slice| {
                    for (i, v) in slice.iter_mut().enumerate() {
                        *v = asl[off + i] + bsl[off + i];
                    }
                });
                black_box(out[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("sub_serial", n), &n, |bench, _| {
            bench.iter(|| black_box(a.sub(&b)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_ops);
criterion_main!(benches);

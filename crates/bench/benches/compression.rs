//! Compressed-transmission kernel benchmarks (backs Fig. 16): CSR
//! conversion, delta encode/decode, and wire codec throughput at the
//! paper's 75 % sparsity operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psml_net::codec::{decode, encode};
use psml_net::{DeltaDecoder, DeltaEncoder, Payload};
use psml_tensor::{Csr, Matrix};
use std::hint::black_box;

fn sparse(n: usize, zero_every: usize) -> Matrix<f32> {
    Matrix::from_fn(n, n, |r, c| {
        if (r * n + c).is_multiple_of(zero_every) {
            (r + c) as f32 + 1.0
        } else {
            0.0
        }
    })
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[64usize, 128, 256] {
        let m = sparse(n, 4); // 75 % zeros: the paper's threshold point
        group.bench_with_input(BenchmarkId::new("csr_from_dense", n), &n, |b, _| {
            b.iter(|| black_box(Csr::from_dense(&m)))
        });
        let csr = Csr::from_dense(&m);
        group.bench_with_input(BenchmarkId::new("csr_to_dense", n), &n, |b, _| {
            b.iter(|| black_box(csr.to_dense()))
        });
        group.bench_with_input(BenchmarkId::new("delta_roundtrip", n), &n, |b, _| {
            b.iter(|| {
                let mut enc = DeltaEncoder::new();
                let mut dec = DeltaDecoder::new();
                let base = Matrix::<f32>::zeros(n, n);
                dec.decode(enc.encode(&base)).unwrap();
                let next = sparse(n, 16);
                black_box(dec.decode(enc.encode(&next)).unwrap())
            })
        });
        let dense_payload = Payload::Dense(m.clone());
        let sparse_payload = Payload::SparseDelta(csr.clone());
        group.bench_with_input(BenchmarkId::new("codec_dense", n), &n, |b, _| {
            b.iter(|| black_box(decode::<f32>(encode(&dense_payload)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("codec_sparse", n), &n, |b, _| {
            b.iter(|| black_box(decode::<f32>(encode(&sparse_payload)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);

//! Overhead of the structured-tracing sink: the disabled path must cost
//! one relaxed atomic load (zero-cost when off), and the enabled path one
//! thread-local push, so tracing can stay compiled into every protocol
//! hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use psml_trace::TraceSink;
use std::hint::black_box;

fn record_one(i: u64) {
    if TraceSink::is_enabled() {
        TraceSink::span("gemm", "bench/compute", i, i + 100, 64);
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    TraceSink::disable();
    TraceSink::clear();
    group.bench_function("record_disabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                record_one(black_box(i));
            }
        })
    });

    TraceSink::enable();
    group.bench_function("record_enabled_x1000", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                record_one(black_box(i));
            }
            // Drain so the buffer does not grow across iterations (the
            // realloc would dominate and misstate the steady-state cost).
            black_box(TraceSink::drain().len());
        })
    });
    TraceSink::disable();
    TraceSink::clear();
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);

//! Random-generation kernel benchmarks (backs Fig. 7 and the Sec. 5.1
//! thread-safe RNG design): MT19937 vs the counter-based device RNG, and
//! serial vs thread-local-parallel generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psml_gpu::kernels::device_random;
use psml_parallel::{parallel_for_in, with_thread_rng, Mt19937};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[1024usize, 16 * 1024, 256 * 1024] {
        group.bench_with_input(BenchmarkId::new("mt19937_serial", n), &n, |b, &n| {
            let mut rng = Mt19937::new(7);
            let mut buf = vec![0f32; n];
            b.iter(|| {
                rng.fill_f32(&mut buf, -1.0, 1.0);
                black_box(buf[0])
            })
        });
        group.bench_with_input(
            BenchmarkId::new("mt19937_thread_local", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut total = 0u32;
                    parallel_for_in(2, n, 16, |chunk| {
                        with_thread_rng(|r| {
                            for _ in chunk.start..chunk.end {
                                black_box(r.next_u32());
                            }
                        });
                    });
                    total = total.wrapping_add(1);
                    black_box(total)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("device_philox_like", n), &n, |b, &n| {
            let side = (n as f64).sqrt() as usize;
            b.iter(|| black_box(device_random::<f32>(side, side, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);

//! Double-pipeline ablation bench: wall-clock cost of driving the engine
//! with and without pipelining (the simulated-time benefit is shown by
//! `fig2_breakdown` / the examples; this measures harness overhead is sane
//! and that the pipelined path does not add real CPU cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parsecureml::prelude::*;
use parsecureml::SecureContext;
use std::hint::black_box;

fn run(pipeline: bool, n: usize) -> PlainMatrix {
    let cfg = EngineConfig::parsecureml()
        .with_pipeline(pipeline)
        .with_policy(AdaptivePolicy::ForceGpu);
    let mut ctx = SecureContext::<Fixed64>::new(cfg, 3);
    let a = PlainMatrix::from_fn(n, n, |r, c| ((r + c) % 5) as f64 * 0.1);
    let b = PlainMatrix::from_fn(n, n, |r, c| ((r * 2 + c) % 7) as f64 * 0.1);
    ctx.secure_matmul_plain(&a, &b).unwrap()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[32usize, 64] {
        group.bench_with_input(BenchmarkId::new("pipelined", n), &n, |b, &n| {
            b.iter(|| black_box(run(true, n)))
        });
        group.bench_with_input(BenchmarkId::new("fenced", n), &n, |b, &n| {
            b.iter(|| black_box(run(false, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

#![forbid(unsafe_code)]
//! Shared harness for the paper-reproduction experiments.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper;
//! this library holds the common machinery: workload geometry, the
//! secure/plain runners, and table formatting.
//!
//! # Workload scaling
//!
//! The paper's largest inputs (NIST 512x512, VGGFace2 200x200, 60 000-
//! sample batches) do not fit a single-core 15 GB reproduction box when
//! every protocol matrix is *really* materialized, so the harness runs
//! **shape-faithful scaled-down geometries** (below) and reports simulated
//! time from the calibrated machine model. Relative results — who wins,
//! crossovers, occupancies, savings — are what the paper's evaluation
//! establishes, and those are preserved; absolute seconds are not
//! comparable to the paper's testbed and are labeled as simulated.
//!
//! | Dataset   | Paper     | Harness |
//! |-----------|-----------|---------|
//! | MNIST     | 1x28x28   | native  |
//! | CIFAR-10  | 3x32x32   | native  |
//! | VGGFace2  | 1x200x200 | 1x56x56 |
//! | NIST      | 1x512x512 | 1x64x64 |
//! | SYNTHETIC | 32x64     | native  |

use parsecureml::baseline::{PlainBackend, PlainModel};
use parsecureml::prelude::*;
use psml_mpc::PlainMatrix;

/// Default mini-batch size for harness runs (paper uses 128; scaled for
/// the reproduction box).
pub const BATCH_SIZE: usize = 16;
/// Default number of distinct batches.
pub const BATCHES: usize = 1;
/// Default training epochs over those batches.
pub const EPOCHS: usize = 2;
/// Common RNG seed for dataset generation.
pub const DATA_SEED: u32 = 2020;
/// Common RNG seed for protocol randomness / weight init.
pub const PROTO_SEED: u32 = 42;

/// Harness geometry for a dataset: `(channels, height, width)`.
pub fn geometry(dataset: DatasetKind) -> (usize, usize, usize) {
    match dataset {
        DatasetKind::Mnist => (1, 28, 28),
        DatasetKind::Cifar10 => (3, 32, 32),
        DatasetKind::VggFace2 => (1, 56, 56),
        DatasetKind::Nist => (1, 64, 64),
        DatasetKind::Synthetic => (1, 32, 64),
    }
}

/// Flattened features under the harness geometry.
pub fn features(dataset: DatasetKind) -> usize {
    let (c, h, w) = geometry(dataset);
    c * h * w
}

/// Generates one harness batch: native data truncated to the harness
/// geometry (first `features` columns), with the dataset's labels.
pub fn harness_batch(dataset: DatasetKind, batch_size: usize, idx: usize) -> (PlainMatrix, Batch) {
    let data = batch(dataset, batch_size, idx, DATA_SEED);
    let f = features(dataset);
    let x = PlainMatrix::from_fn(batch_size, f, |r, c| data.x[(r, c)]);
    (x, data)
}

/// Builds the model spec for a `(model, dataset)` pair under harness
/// geometry.
pub fn spec_for(model: ModelKind, dataset: DatasetKind) -> ModelSpec {
    let f = features(dataset);
    let image = Some(geometry(dataset));
    ModelSpec::build(model, f, image, 10).expect("model spec")
}

/// The `(dataset, model)` grid of the paper's Figs. 10-13 / Tables 2-3:
/// five models on every dataset, RNN only on SYNTHETIC.
pub fn evaluation_grid() -> Vec<(DatasetKind, ModelKind)> {
    let mut grid = Vec::new();
    for dataset in DatasetKind::ALL {
        for model in [
            ModelKind::Cnn,
            ModelKind::Mlp,
            ModelKind::Linear,
            ModelKind::Logistic,
            ModelKind::Svm,
        ] {
            grid.push((dataset, model));
        }
        if dataset == DatasetKind::Synthetic {
            grid.push((dataset, ModelKind::Rnn));
        }
    }
    grid
}

/// Runs secure training (epochs over shared batches) and returns the
/// trainer's report.
pub fn run_secure_training(
    cfg: EngineConfig,
    model: ModelKind,
    dataset: DatasetKind,
    batch_size: usize,
    batches: usize,
    epochs: usize,
) -> RunReport {
    let spec = spec_for(model, dataset);
    let mut trainer =
        SecureTrainer::<Fixed64>::new(cfg, spec, PROTO_SEED).expect("trainer");
    let mut shared = Vec::new();
    for b in 0..batches {
        let (x, data) = harness_batch(dataset, batch_size, b);
        let y = trainer.targets_for(&data);
        shared.push((x, y));
    }
    // Share once, then train epochs (the paper's Eq. (11) setup).
    let mut pairs = Vec::new();
    for (x, y) in &shared {
        let xs = trainer_ctx_share(&mut trainer, x);
        let ys = trainer_ctx_share(&mut trainer, y);
        pairs.push((xs, ys, y.clone()));
    }
    for _ in 0..epochs {
        for (xs, ys, y) in &pairs {
            trainer
                .train_on_shared(xs, ys, y)
                .expect("secure training step");
        }
    }
    trainer.report()
}

fn trainer_ctx_share(
    trainer: &mut SecureTrainer<Fixed64>,
    m: &PlainMatrix,
) -> parsecureml::engine::SharedMatrix<Fixed64> {
    trainer.share_input(m).expect("share input")
}

/// Runs secure inference (forward passes only).
pub fn run_secure_inference(
    cfg: EngineConfig,
    model: ModelKind,
    dataset: DatasetKind,
    batch_size: usize,
    batches: usize,
) -> RunReport {
    let spec = spec_for(model, dataset);
    let mut trainer =
        SecureTrainer::<Fixed64>::new(cfg, spec, PROTO_SEED).expect("trainer");
    for b in 0..batches {
        let (x, _) = harness_batch(dataset, batch_size, b);
        trainer
            .infer_request(&InferRequest::new(x).with_tag(b as u64))
            .expect("secure inference");
    }
    trainer.report()
}

/// Runs the plaintext baseline and returns its simulated elapsed time.
pub fn run_plain_training(
    cfg: EngineConfig,
    model: ModelKind,
    dataset: DatasetKind,
    backend: PlainBackend,
    batch_size: usize,
    batches: usize,
    epochs: usize,
) -> SimDuration {
    let spec = spec_for(model, dataset);
    let mut plain = PlainModel::new(cfg, spec, backend, PROTO_SEED).expect("plain model");
    let mut shared = Vec::new();
    for b in 0..batches {
        let (x, data) = harness_batch(dataset, batch_size, b);
        let y = plain.targets_for(&data);
        shared.push((x, y));
    }
    for _ in 0..epochs {
        for (x, y) in &shared {
            plain.train_batch(x, y).expect("plain training step");
        }
    }
    plain.elapsed()
}

/// One grid cell's results: the two secure systems on one workload.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Workload dataset.
    pub dataset: DatasetKind,
    /// Workload model.
    pub model: ModelKind,
    /// Full ParSecureML run.
    pub fast: RunReport,
    /// SecureML baseline run.
    pub slow: RunReport,
}

/// Runs the full evaluation grid (Figs. 10-12 / Table 3) for secure
/// *training*: every cell under ParSecureML and under the SecureML
/// baseline.
pub fn training_grid() -> Vec<GridCell> {
    evaluation_grid()
        .into_iter()
        .map(|(dataset, model)| GridCell {
            dataset,
            model,
            fast: run_secure_training(
                EngineConfig::parsecureml(),
                model,
                dataset,
                BATCH_SIZE,
                BATCHES,
                EPOCHS,
            ),
            slow: run_secure_training(
                EngineConfig::secureml(),
                model,
                dataset,
                BATCH_SIZE,
                BATCHES,
                EPOCHS,
            ),
        })
        .collect()
}

/// Runs the evaluation grid for secure *inference* (Fig. 13). The paper
/// notes linear regression and SVM share the `w^T x + b` inference path,
/// so SVM is folded into `linear` here as well.
pub fn inference_grid() -> Vec<GridCell> {
    evaluation_grid()
        .into_iter()
        .filter(|(_, model)| *model != ModelKind::Svm)
        .map(|(dataset, model)| GridCell {
            dataset,
            model,
            fast: run_secure_inference(
                EngineConfig::parsecureml(),
                model,
                dataset,
                BATCH_SIZE,
                2,
            ),
            slow: run_secure_inference(
                EngineConfig::secureml(),
                model,
                dataset,
                BATCH_SIZE,
                2,
            ),
        })
        .collect()
}

/// Prints a standard experiment header.
pub fn header(title: &str, note: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{note}");
    println!("(simulated time from the calibrated V100-node machine model;");
    println!(" see DESIGN.md / EXPERIMENTS.md for the substitution notes)");
    println!("================================================================");
    println!();
}

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_shape_faithful_or_documented() {
        assert_eq!(geometry(DatasetKind::Mnist), (1, 28, 28));
        assert_eq!(geometry(DatasetKind::Cifar10), (3, 32, 32));
        assert_eq!(features(DatasetKind::Synthetic), 2048);
    }

    #[test]
    fn grid_covers_26_combinations() {
        // 5 datasets x 5 models + RNN on SYNTHETIC.
        assert_eq!(evaluation_grid().len(), 26);
    }

    #[test]
    fn harness_batch_truncates_features() {
        let (x, _) = harness_batch(DatasetKind::Nist, 2, 0);
        assert_eq!(x.shape(), (2, 64 * 64));
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn tiny_secure_run_completes() {
        let report = run_secure_training(
            EngineConfig::parsecureml(),
            ModelKind::Linear,
            DatasetKind::Synthetic,
            4,
            1,
            1,
        );
        assert!(report.online_time.as_secs() > 0.0);
        assert!(report.secure_muls >= 2);
    }
}

//! Fig. 8: proportion of GPU activity time spent in GEMM, by matrix size.
//!
//! Paper shape to reproduce: the GEMM share grows with matrix dimension
//! and exceeds 50 % at n = 16384.

use parsecureml::prelude::*;
use psml_bench::*;
use psml_gpu::{GemmMode, GpuDevice};
use psml_tensor::Matrix;

fn main() {
    header(
        "Fig. 8 — GEMM share of total GPU activity (h2d + gemm + d2h)",
        "Executed on the simulated device up to n=1024; cost model beyond.",
    );
    let machine = MachineConfig::v100_node();
    println!("{:>8} {:>12} {:>10}", "dim n", "GEMM time", "GEMM %");
    let mut last_fraction = 0.0;
    for shift in 10..=14 {
        let n = 1usize << shift;
        let fraction = if n <= 1024 {
            // Real execution through the device + nvprof-style profile.
            let mut dev = GpuDevice::<f32>::new(machine.gpu.clone());
            let a = Matrix::from_fn(n, n, |r, c| ((r + c) % 7) as f32);
            let b = Matrix::from_fn(n, n, |r, c| ((r * 3 + c) % 5) as f32);
            let ha = dev.upload(&a, SimTime::ZERO).unwrap();
            let hb = dev.upload(&b, SimTime::ZERO).unwrap();
            let hc = dev.gemm(ha, hb, GemmMode::Fp32).unwrap();
            let _ = dev.download(hc).unwrap();
            dev.profile().fraction_matching("gemm")
        } else {
            // Cost-model-only (a 16384^3 GEMM is ~8.8 TFLOP of real work).
            let gemm = machine.gpu.gemm_time(n, n, n, false);
            let io = machine.gpu.pcie.transfer_time(n * n * 4) * 3.0;
            gemm / (gemm + io)
        };
        let gemm_t = machine.gpu.gemm_time(n, n, n, false);
        println!("{:>8} {:>12} {:>9.1}%", n, gemm_t.to_string(), fraction * 100.0);
        assert!(
            fraction >= last_fraction - 1e-9,
            "GEMM share must grow with n"
        );
        last_fraction = fraction;
    }
    println!();
    assert!(last_fraction > 0.5, "GEMM must dominate at n=16384");
    println!("shape check passed: share grows with n, >50% at 16384");
}

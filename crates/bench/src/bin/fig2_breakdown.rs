//! Fig. 2: time breakdown of two-party computation (MLP on MNIST).
//!
//! Paper shape to reproduce: offline is dominated by share generation
//! (transfer small); in the online phase, compute2 dwarfs compute1 and
//! communicate.

use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Fig. 2 — time breakdown for two-party computation",
        "MLP on MNIST-like data, SecureML baseline (as in the paper's figure).",
    );
    let report = run_secure_training(
        EngineConfig::secureml(),
        ModelKind::Mlp,
        DatasetKind::Mnist,
        BATCH_SIZE,
        BATCHES,
        EPOCHS,
    );
    let b = report.breakdown;
    println!("offline phase:");
    println!("  generate shares/triples : {}", b.share_generation);
    println!("  transmit to servers     : {}", b.distribution);
    println!("  (end-to-end offline     : {})", report.offline_time);
    println!();
    println!("online phase (serialized step sums):");
    println!("  compute1 (masking)      : {}", b.compute1);
    println!("  communicate (E/F)       : {}", b.communicate);
    println!("  compute2 (C_i)          : {}", b.compute2);
    println!("  activation exchange     : {}", b.activation);
    println!("  (end-to-end online      : {})", report.online_time);
    println!();
    let c2_share = b.compute2 / b.online_serialized();
    println!(
        "compute2 share of online work: {:.1}%  (paper: ~99% of 95.95s)",
        c2_share * 100.0
    );
    assert!(
        b.compute2 > b.compute1 && b.compute2 > b.communicate,
        "shape violation: compute2 must dominate"
    );
    println!("shape check passed: compute2 >> compute1, communicate");
}

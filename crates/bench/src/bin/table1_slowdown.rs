//! Table 1: slowdown of SecureML over the original (non-secure) CPU
//! implementation, on the MNIST workload.
//!
//! Paper shape to reproduce: SecureML ~2x slower than the original
//! implementation across CNN / MLP / linear / logistic.

use parsecureml::baseline::PlainBackend;
use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Table 1 — SecureML vs original (non-secure) implementation",
        "MNIST workload; original = plaintext CPU, SecureML = CPU 2PC.",
    );
    println!(
        "{:<22} {:>14} {:>14} {:>12}",
        "Method", "Original (s)", "SecureML (s)", "Slowdown (x)"
    );
    let mut ratios = Vec::new();
    // The paper's batch size (128) so GEMM work dominates fixed overheads,
    // and several epochs so the one-time offline cost amortizes the way the
    // paper's 469 batches amortize it.
    let batch = 128;
    let epochs = 4;
    for model in [
        ModelKind::Cnn,
        ModelKind::Mlp,
        ModelKind::Linear,
        ModelKind::Logistic,
    ] {
        // Both systems on the same (untuned, single-thread) CPU model —
        // the paper's SecureML testbed.
        let original = run_plain_training(
            EngineConfig::secureml(),
            model,
            DatasetKind::Mnist,
            PlainBackend::Cpu,
            batch,
            BATCHES,
            epochs,
        );
        let secure = run_secure_training(
            EngineConfig::secureml(),
            model,
            DatasetKind::Mnist,
            batch,
            BATCHES,
            epochs,
        );
        let slowdown = secure.total_time().as_secs() / original.as_secs();
        ratios.push(slowdown);
        println!(
            "{:<22} {:>14.6} {:>14.6} {:>12.2}",
            model.name(),
            original.as_secs(),
            secure.total_time().as_secs(),
            slowdown
        );
    }
    println!();
    println!(
        "average slowdown: {:.2}x   (paper: ~2x; shape: secure 2PC costs a",
        geomean(&ratios)
    );
    println!("small constant factor over plaintext on the same hardware)");
}

//! Fig. 15: benefit of running GPU GEMMs on Tensor Cores (Sec. 5.2).
//!
//! Paper shape to reproduce: a small positive end-to-end improvement
//! (3.11 % average), largest for GEMM-heavy workloads.

use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Fig. 15 — Tensor-Core optimization benefit",
        "ParSecureML with cublasSgemmEx-style FP16/FP32 GEMM vs FP32 GEMM.",
    );
    println!(
        "{:<12} {:<10} {:>14} {:>14} {:>10}",
        "Dataset", "Model", "FP32 GEMM", "Tensor Cores", "Benefit"
    );
    let mut benefits = Vec::new();
    for (dataset, model) in evaluation_grid() {
        // Force GPU placement so the GEMM-unit choice is exercised even at
        // harness scale (the paper's runs always used the GPU).
        let tc = run_secure_training(
            EngineConfig::parsecureml().with_policy(AdaptivePolicy::ForceGpu),
            model,
            dataset,
            BATCH_SIZE,
            BATCHES,
            EPOCHS,
        );
        let fp32 = run_secure_training(
            EngineConfig::parsecureml()
                .with_tensor_cores(false)
                .with_policy(AdaptivePolicy::ForceGpu),
            model,
            dataset,
            BATCH_SIZE,
            BATCHES,
            EPOCHS,
        );
        let benefit = 1.0 - tc.total_time().as_secs() / fp32.total_time().as_secs();
        println!(
            "{:<12} {:<10} {:>14} {:>14} {:>9.1}%",
            dataset.spec().name,
            model.name(),
            fp32.total_time().to_string(),
            tc.total_time().to_string(),
            benefit * 100.0
        );
        benefits.push(benefit);
    }
    println!();
    let avg = benefits.iter().sum::<f64>() / benefits.len() as f64;
    println!(
        "average Tensor-Core benefit: {:.1}%  (paper: 3.11% — small but positive)",
        avg * 100.0
    );
    assert!(
        avg >= 0.0,
        "shape violation: tensor cores must not hurt on average"
    );

    // At harness scale the GPU time is transfer/launch-dominated (Fig. 8:
    // GEMM needs n >~ 8k to dominate), so the end-to-end benefit is tiny.
    // Show the benefit growing toward the paper's figure at paper-scale
    // GEMMs via the calibrated cost model (same model as everywhere else).
    println!();
    println!("GEMM-heavy scaling (cost model, per secure mul incl. PCIe):");
    use parsecureml::adaptive::AdaptiveEngine;
    let base = EngineConfig::parsecureml().with_policy(AdaptivePolicy::ForceGpu);
    let fp32_cfg = base.clone().with_tensor_cores(false);
    let mut prev = -1.0;
    for &n in &[512usize, 2048, 8192] {
        let bytes = 6 * n * n * 8;
        let t_tc = AdaptiveEngine::gpu_cost(&base, n, 2 * n, n, bytes);
        let t_fp = AdaptiveEngine::gpu_cost(&fp32_cfg, n, 2 * n, n, bytes);
        let gain = 1.0 - t_tc.as_secs() / t_fp.as_secs();
        println!("  n = {n:>5}: Tensor-Core benefit {:.1}%", gain * 100.0);
        assert!(gain >= prev, "benefit must grow with GEMM share");
        prev = gain;
    }
    println!("shape check passed: non-negative benefit, growing with GEMM share");
}

//! Ablation: the profiling-guided adaptive placement (Sec. 4.2) versus
//! forcing everything onto one device. The adaptive engine should match
//! or beat both forced policies on every workload — small models stay on
//! the CPU, big ones go to the GPU, and Auto picks correctly.

use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Ablation — adaptive placement vs ForceCpu / ForceGpu",
        "Per-workload online time under the three policies.",
    );
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>12} {:>8}",
        "Dataset", "Model", "ForceCpu", "ForceGpu", "Auto", "best?"
    );
    let mut auto_wins = 0usize;
    let mut cells = 0usize;
    for (dataset, model) in [
        (DatasetKind::Mnist, ModelKind::Linear),
        (DatasetKind::Mnist, ModelKind::Mlp),
        (DatasetKind::Nist, ModelKind::Mlp),
        (DatasetKind::Nist, ModelKind::Cnn),
        (DatasetKind::Synthetic, ModelKind::Rnn),
        (DatasetKind::VggFace2, ModelKind::Logistic),
    ] {
        let run = |policy: AdaptivePolicy| {
            run_secure_training(
                EngineConfig::parsecureml().with_policy(policy),
                model,
                dataset,
                BATCH_SIZE,
                BATCHES,
                EPOCHS,
            )
            .online_time
        };
        let cpu = run(AdaptivePolicy::ForceCpu);
        let gpu = run(AdaptivePolicy::ForceGpu);
        let auto = run(AdaptivePolicy::Auto);
        let best = cpu.min(gpu);
        // Auto must be within a whisker of the better forced policy.
        let ok = auto.as_secs() <= best.as_secs() * 1.05;
        if ok {
            auto_wins += 1;
        }
        cells += 1;
        println!(
            "{:<12} {:<10} {:>12} {:>12} {:>12} {:>8}",
            dataset.spec().name,
            model.name(),
            cpu.to_string(),
            gpu.to_string(),
            auto.to_string(),
            if ok { "yes" } else { "NO" }
        );
    }
    println!();
    assert_eq!(
        auto_wins, cells,
        "adaptive placement lost to a forced policy somewhere"
    );
    println!("shape check passed: Auto matches the better forced policy on all {cells} workloads");
}

//! Fig. 7: cuRAND on the GPU vs MT19937 on the CPU for random-matrix
//! generation.
//!
//! Paper shape to reproduce: the CPU wins small matrices; the GPU
//! (including generator setup and the copy back to the host) wins large
//! ones, with the crossover in the n ~ 10^3 range.

use parsecureml::prelude::*;
use psml_bench::*;
use psml_gpu::GpuDevice;

fn main() {
    header(
        "Fig. 7 — cuRAND (GPU) vs MT19937 (CPU) random generation",
        "n x n matrices; GPU time includes generator setup + D2H copy.",
    );
    let machine = MachineConfig::v100_node();
    println!(
        "{:>8} {:>16} {:>16} {:>8}",
        "dim n", "MT19937 CPU", "cuRAND GPU", "winner"
    );
    let mut crossover = None;
    for shift in 6..=14 {
        let n = 1usize << shift;
        let cpu = machine.cpu.rng_time(n * n, 1);
        let gpu = machine.gpu.rng_time(n * n) + machine.gpu.pcie.transfer_time(n * n * 4);
        let winner = if gpu < cpu { "GPU" } else { "CPU" };
        if gpu < cpu && crossover.is_none() {
            crossover = Some(n);
        }
        println!(
            "{:>8} {:>16} {:>16} {:>8}",
            n,
            cpu.to_string(),
            gpu.to_string(),
            winner
        );
    }
    println!();
    // Execute the small end for real to validate the functional kernels.
    let mut dev = GpuDevice::<f32>::new(machine.gpu.clone());
    let h = dev.random(256, 256, 7, SimTime::ZERO).expect("device rng");
    let (m, _) = dev.download(h).expect("d2h");
    assert!(m.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    let cross = crossover.expect("no crossover found");
    println!("crossover at n = {cross} (paper's figure: order 10^3)");
    assert!(
        (256..=4096).contains(&cross),
        "crossover {cross} outside the paper's range"
    );
    println!("shape check passed: CPU wins small, GPU wins large");
}

//! Fig. 11: online-phase speedup of ParSecureML over SecureML.
//!
//! Paper shape to reproduce: the online speedup exceeds the overall
//! speedup (64.5x vs 33.8x in the paper) — the GPU accelerates exactly
//! the part that dominates.

use psml_bench::*;

fn main() {
    header(
        "Fig. 11 — online ParSecureML speedup over SecureML (training)",
        "Online = server-side phase from data receipt to result.",
    );
    println!(
        "{:<12} {:<10} {:>14} {:>14} {:>10}",
        "Dataset", "Model", "SecureML", "ParSecureML", "Speedup"
    );
    let grid = training_grid();
    let mut online = Vec::new();
    let mut overall = Vec::new();
    for cell in &grid {
        let s = cell.fast.online_speedup_over(&cell.slow);
        println!(
            "{:<12} {:<10} {:>14} {:>14} {:>9.1}x",
            cell.dataset.spec().name,
            cell.model.name(),
            cell.slow.online_time.to_string(),
            cell.fast.online_time.to_string(),
            s
        );
        online.push(s);
        overall.push(cell.fast.speedup_over(&cell.slow));
    }
    println!();
    println!(
        "average online speedup : {:.1}x  (paper: 64.5x)",
        geomean(&online)
    );
    println!("average overall speedup: {:.1}x", geomean(&overall));
    assert!(
        geomean(&online) > geomean(&overall),
        "shape violation: online speedup must exceed overall speedup"
    );
    println!("shape check passed: online speedup > overall speedup");
}

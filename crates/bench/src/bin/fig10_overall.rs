//! Fig. 10: overall speedup of ParSecureML over SecureML, per
//! (dataset, model) cell of the evaluation grid.
//!
//! Paper shape to reproduce: tens-of-x average speedup; larger datasets
//! benefit more than MNIST.

use psml_bench::*;
use psml_data::DatasetKind;

fn main() {
    header(
        "Fig. 10 — overall ParSecureML speedup over SecureML (training)",
        "Scaled harness geometries; speedups are simulated-time ratios.",
    );
    println!(
        "{:<12} {:<10} {:>16} {:>16} {:>10}",
        "Dataset", "Model", "SecureML (s)", "ParSecureML (s)", "Speedup"
    );
    let grid = training_grid();
    let mut all = Vec::new();
    let mut mnist = Vec::new();
    let mut large = Vec::new();
    for cell in &grid {
        let s = cell.fast.speedup_over(&cell.slow);
        println!(
            "{:<12} {:<10} {:>16.6} {:>16.6} {:>9.1}x",
            cell.dataset.spec().name,
            cell.model.name(),
            cell.slow.total_time().as_secs(),
            cell.fast.total_time().as_secs(),
            s
        );
        all.push(s);
        match cell.dataset {
            DatasetKind::Mnist => mnist.push(s),
            DatasetKind::Nist | DatasetKind::VggFace2 => large.push(s),
            _ => {}
        }
    }
    println!();
    println!("average overall speedup : {:.1}x  (paper: 33.8x)", geomean(&all));
    println!(
        "large datasets (VGG/NIST): {:.1}x vs MNIST: {:.1}x",
        geomean(&large),
        geomean(&mnist)
    );
    assert!(geomean(&all) > 5.0, "shape violation: speedup must be large");
    assert!(
        geomean(&large) > geomean(&mnist) * 0.8,
        "shape violation: larger datasets should benefit at least comparably"
    );
    println!("shape check passed: large average speedup");
}

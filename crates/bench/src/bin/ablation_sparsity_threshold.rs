//! Ablation: the CSR compression threshold (the paper fixes 75 % zeros;
//! Sec. 4.4 "75 percent elements in the matrix are zero in our default
//! settings"). Sweeps the threshold and reports traffic + a sanity check
//! that results are unchanged.

use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Ablation — compression sparsity threshold sweep",
        "MLP on SYNTHETIC, 4 epochs over fixed shares; lower threshold = compress more aggressively.",
    );
    println!(
        "{:>10} {:>18} {:>12}",
        "threshold", "srv<->srv bytes", "vs dense"
    );
    let run = |threshold: f64, compression: bool| {
        let mut cfg = EngineConfig::parsecureml().with_compression(compression);
        cfg.sparsity_threshold = threshold;
        run_secure_training(cfg, ModelKind::Mlp, DatasetKind::Synthetic, 8, 1, 4)
    };
    let dense = run(0.75, false)
        .traffic
        .server_to_server_wire_bytes();
    let mut prev_bytes = usize::MAX;
    for &threshold in &[0.95, 0.75, 0.5, 0.25, 0.0] {
        let report = run(threshold, true);
        let bytes = report.traffic.server_to_server_wire_bytes();
        println!(
            "{:>10.2} {:>18} {:>11.1}%",
            threshold,
            bytes,
            (1.0 - bytes as f64 / dense as f64) * 100.0
        );
        // Lowering the threshold can only compress more (or equal): the
        // policy still refuses CSR when it would be larger than dense.
        assert!(
            bytes <= prev_bytes,
            "lower threshold must not increase traffic"
        );
        prev_bytes = bytes;
    }
    println!();
    println!("dense-only reference: {dense} bytes");
    println!("shape check passed: traffic monotone in threshold, never above dense");
}

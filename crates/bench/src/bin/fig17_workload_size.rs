//! Fig. 17: ParSecureML speedup as a function of workload size.
//!
//! Paper shape to reproduce: the speedup over SecureML grows with the
//! workload (1 MB -> 4 GB in the paper). Sizes up to 8 MB execute for
//! real through the engine; larger points continue on the same calibrated
//! cost model (a 4 GB secure GEMM cannot be materialized on the
//! reproduction box — see DESIGN.md).

use parsecureml::adaptive::AdaptiveEngine;
use parsecureml::prelude::*;
use parsecureml::SecureContext;

use psml_bench::*;

/// Square dimension so one operand matrix is `mb` megabytes of u64.
fn dim_for_mb(mb: usize) -> usize {
    (((mb * (1 << 20)) / 8) as f64).sqrt() as usize
}

fn main() {
    header(
        "Fig. 17 — speedup vs workload size (SYNTHETIC-style GEMM)",
        "<= 8 MB executed end-to-end; larger points cost-model-only.",
    );
    let fast_cfg = EngineConfig::parsecureml();
    let slow_cfg = EngineConfig::secureml();
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>10} {:>10}",
        "size", "dim n", "SecureML", "ParSecureML", "Speedup", "mode"
    );
    let mut last = 0.0;
    let mut speedups = Vec::new();
    for &mb in &[1usize, 4, 8, 64, 512, 4096] {
        let n = dim_for_mb(mb);
        let (slow_t, fast_t, mode) = if mb <= 8 {
            // Real end-to-end secure multiplications.
            let run = |cfg: EngineConfig| {
                let mut ctx = SecureContext::<Fixed64>::new(cfg, 7);
                let a = PlainMatrix::from_fn(n, n, |r, c| ((r + c) % 5) as f64 * 0.1);
                let b = PlainMatrix::from_fn(n, n, |r, c| ((r * 3 + c) % 7) as f64 * 0.1);
                ctx.secure_matmul_plain(&a, &b).unwrap();
                ctx.report().total_time()
            };
            (run(slow_cfg.clone()), run(fast_cfg.clone()), "executed")
        } else {
            // Cost model: compute2 GEMM + masking + communication.
            let model_time = |cfg: &EngineConfig| {
                let gemm = if matches!(cfg.policy, AdaptivePolicy::ForceCpu) {
                    AdaptiveEngine::cpu_cost(cfg, n, 2 * n, n)
                } else {
                    AdaptiveEngine::gpu_cost(cfg, n, 2 * n, n, 6 * n * n * 8)
                };
                let masking = cfg.machine.cpu.elementwise_time(6 * n * n * 8, cfg.cpu_threads);
                let comm = cfg.machine.network.transfer_time(2 * n * n * 8);
                let offline = cfg.cpu_gemm_time(n, n, n);
                gemm + masking + comm + offline
            };
            (model_time(&slow_cfg), model_time(&fast_cfg), "modeled")
        };
        let speedup = slow_t.as_secs() / fast_t.as_secs();
        let size_label = if mb >= 1024 {
            format!("{} GB", mb / 1024)
        } else {
            format!("{mb} MB")
        };
        println!(
            "{:>10} {:>8} {:>14} {:>14} {:>9.1}x {:>10}",
            size_label,
            n,
            slow_t.to_string(),
            fast_t.to_string(),
            speedup,
            mode
        );
        speedups.push(speedup);
        last = speedup;
    }
    println!();
    assert!(
        last >= speedups[0],
        "shape violation: speedup must grow with workload size"
    );
    println!("shape check passed: speedup grows with workload size");
}

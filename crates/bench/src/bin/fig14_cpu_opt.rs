//! Fig. 14: benefit of the Sec. 5.1 CPU optimizations (parallel RNG +
//! parallel matrix add/sub with cache-line chunking).
//!
//! Paper shape to reproduce: a clear single-digit-to-tens percent
//! end-to-end improvement (10.71 % average), varying by dataset (bigger
//! images schedule threads better).

use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Fig. 14 — CPU-parallelism optimization benefit",
        "Sec. 5.1 client-side parallelism (RNG + add/sub) on vs off.",
    );
    println!(
        "{:<12} {:<10} {:>14} {:>14} {:>10}",
        "Dataset", "Model", "serial CPU", "parallel CPU", "Benefit"
    );
    let mut benefits = Vec::new();
    let batch = BATCH_SIZE;
    for (dataset, model) in evaluation_grid() {
        let optimized = run_secure_training(
            EngineConfig::parsecureml(),
            model,
            dataset,
            batch,
            BATCHES,
            EPOCHS,
        );
        let serial = run_secure_training(
            EngineConfig::parsecureml().with_client_cpu_threads(1),
            model,
            dataset,
            batch,
            BATCHES,
            EPOCHS,
        );
        let benefit =
            1.0 - optimized.total_time().as_secs() / serial.total_time().as_secs();
        println!(
            "{:<12} {:<10} {:>14} {:>14} {:>9.1}%",
            dataset.spec().name,
            model.name(),
            serial.total_time().to_string(),
            optimized.total_time().to_string(),
            benefit * 100.0
        );
        benefits.push(benefit);
    }
    println!();
    let avg = benefits.iter().sum::<f64>() / benefits.len() as f64;
    println!(
        "average CPU-parallelism benefit: {:.1}%  (paper: 10.71%)",
        avg * 100.0
    );
    println!("note: larger than the paper because our client offline is");
    println!("RNG-compute-bound; the reference client was I/O-bound, so");
    println!("parallel generation moved its total less (see EXPERIMENTS.md)");
    assert!(avg > 0.0, "shape violation: parallel CPU must help on average");
    println!("shape check passed: positive average benefit");
}

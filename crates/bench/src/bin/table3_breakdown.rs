//! Table 3: online/total time breakdown and occupancy for both systems.
//!
//! Paper shape to reproduce: under SecureML the online phase is >90 % of
//! total time; ParSecureML's acceleration drops occupancy to ~54 % on
//! average.

use psml_bench::*;

fn main() {
    header(
        "Table 3 — online/total breakdown and occupancy",
        "Occupancy = online / (offline + online).",
    );
    println!(
        "{:<12} {:<10} {:>12} {:>12} {:>10} | {:>12} {:>12} {:>10}",
        "Dataset", "Model", "SML online", "SML total", "SML occ",
        "PSML online", "PSML total", "PSML occ"
    );
    let grid = training_grid();
    let mut slow_occ = Vec::new();
    let mut fast_occ = Vec::new();
    for cell in &grid {
        println!(
            "{:<12} {:<10} {:>12} {:>12} {:>9.1}% | {:>12} {:>12} {:>9.1}%",
            cell.dataset.spec().name,
            cell.model.name(),
            cell.slow.online_time.to_string(),
            cell.slow.total_time().to_string(),
            cell.slow.occupancy() * 100.0,
            cell.fast.online_time.to_string(),
            cell.fast.total_time().to_string(),
            cell.fast.occupancy() * 100.0,
        );
        slow_occ.push(cell.slow.occupancy());
        fast_occ.push(cell.fast.occupancy());
    }
    println!();
    let avg_slow = slow_occ.iter().sum::<f64>() / slow_occ.len() as f64;
    let avg_fast = fast_occ.iter().sum::<f64>() / fast_occ.len() as f64;
    println!(
        "average occupancy — SecureML: {:.1}% (paper: >90%), ParSecureML: {:.1}% (paper: 54.2%)",
        avg_slow * 100.0,
        avg_fast * 100.0
    );
    assert!(
        avg_fast < avg_slow,
        "shape violation: acceleration must reduce online occupancy"
    );
    println!("shape check passed: ParSecureML reduces online occupancy");
}

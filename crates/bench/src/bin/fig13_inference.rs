//! Fig. 13: secure-inference speedup of ParSecureML over SecureML.
//!
//! Paper shape to reproduce: inference (the forward sub-process) speeds
//! up by roughly the same large factor as training (31.7x average in the
//! paper). Linear regression stands in for SVM (both infer `w^T x + b`).

use psml_bench::*;

fn main() {
    header(
        "Fig. 13 — secure inference speedup (forward passes only)",
        "Linear regression also covers SVM (identical inference math).",
    );
    println!(
        "{:<12} {:<10} {:>14} {:>14} {:>10}",
        "Dataset", "Model", "SecureML", "ParSecureML", "Speedup"
    );
    let grid = inference_grid();
    let mut speedups = Vec::new();
    for cell in &grid {
        let s = cell.fast.speedup_over(&cell.slow);
        println!(
            "{:<12} {:<10} {:>14.6} {:>14.6} {:>9.1}x",
            cell.dataset.spec().name,
            cell.model.name(),
            cell.slow.total_time().as_secs(),
            cell.fast.total_time().as_secs(),
            s
        );
        speedups.push(s);
    }
    println!();
    println!(
        "average inference speedup: {:.1}x  (paper: 31.7x)",
        geomean(&speedups)
    );
    assert!(
        geomean(&speedups) > 5.0,
        "shape violation: inference speedup must be large"
    );
    println!("shape check passed: large inference speedup");
}

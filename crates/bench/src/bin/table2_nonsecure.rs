//! Table 2: slowdown of the secure systems versus the original,
//! non-secure machine learning tasks running on the GPU.
//!
//! Paper shape to reproduce: SecureML is two orders of magnitude slower
//! than plain GPU ML (249x average), while ParSecureML shrinks that gap
//! to roughly one order (11x average).

use parsecureml::baseline::PlainBackend;
use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Table 2 — slowdown vs non-secure GPU machine learning",
        "Plain GPU baseline keeps weights resident; secure runs as usual.",
    );
    println!(
        "{:<12} {:<10} {:>12} {:>16} {:>18}",
        "Dataset", "Model", "GPU (s)", "SecureML (x)", "ParSecureML (x)"
    );
    let mut slow_ratios = Vec::new();
    let mut fast_ratios = Vec::new();
    for (dataset, model) in evaluation_grid() {
        let gpu = run_plain_training(
            EngineConfig::parsecureml(),
            model,
            dataset,
            PlainBackend::Gpu,
            BATCH_SIZE,
            BATCHES,
            EPOCHS,
        );
        let secure_slow = run_secure_training(
            EngineConfig::secureml(),
            model,
            dataset,
            BATCH_SIZE,
            BATCHES,
            EPOCHS,
        );
        let secure_fast = run_secure_training(
            EngineConfig::parsecureml(),
            model,
            dataset,
            BATCH_SIZE,
            BATCHES,
            EPOCHS,
        );
        let rs = secure_slow.total_time().as_secs() / gpu.as_secs();
        let rf = secure_fast.total_time().as_secs() / gpu.as_secs();
        println!(
            "{:<12} {:<10} {:>12.6} {:>15.1}x {:>17.1}x",
            dataset.spec().name,
            model.name(),
            gpu.as_secs(),
            rs,
            rf
        );
        slow_ratios.push(rs);
        fast_ratios.push(rf);
    }
    println!();
    println!(
        "average SecureML slowdown    : {:.1}x  (paper: 249.34x)",
        geomean(&slow_ratios)
    );
    println!(
        "average ParSecureML slowdown : {:.1}x  (paper: 10.98x)",
        geomean(&fast_ratios)
    );
    assert!(
        geomean(&fast_ratios) * 3.0 < geomean(&slow_ratios),
        "shape violation: ParSecureML must close most of the gap"
    );
    println!("shape check passed: ParSecureML shrinks the gap by >3x");
}

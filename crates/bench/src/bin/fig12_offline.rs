//! Fig. 12: offline-phase speedup of ParSecureML over SecureML.
//!
//! Paper shape to reproduce: a modest, roughly uniform offline speedup
//! (~1.3x in the paper) — the offline phase is generation/transfer-bound,
//! so the GPU helps far less than online.

use psml_bench::*;

fn main() {
    header(
        "Fig. 12 — offline ParSecureML speedup over SecureML (training)",
        "Offline = client share/triple generation + distribution.",
    );
    println!(
        "{:<12} {:<10} {:>14} {:>14} {:>10}",
        "Dataset", "Model", "SecureML", "ParSecureML", "Speedup"
    );
    let grid = training_grid();
    let mut offline = Vec::new();
    let mut online = Vec::new();
    for cell in &grid {
        let s = cell.fast.offline_speedup_over(&cell.slow);
        println!(
            "{:<12} {:<10} {:>14} {:>14} {:>9.1}x",
            cell.dataset.spec().name,
            cell.model.name(),
            cell.slow.offline_time.to_string(),
            cell.fast.offline_time.to_string(),
            s
        );
        offline.push(s);
        online.push(cell.fast.online_speedup_over(&cell.slow));
    }
    println!();
    println!(
        "average offline speedup: {:.1}x  (paper: ~1.3x — modest)",
        geomean(&offline)
    );
    let spread = offline.iter().cloned().fold(f64::MIN, f64::max)
        / offline.iter().cloned().fold(f64::MAX, f64::min);
    println!("max/min spread across benchmarks: {spread:.1}x (paper: similar across benchmarks)");
    assert!(
        geomean(&offline) < geomean(&online) / 2.0,
        "shape violation: offline speedup must be far below online speedup"
    );
    println!("shape check passed: offline speedup modest vs online");
}

//! Fig. 16: inter-server communication saved by compressed transmission.
//!
//! Paper shape to reproduce: shipping sparse deltas in CSR reduces
//! server<->server traffic by ~20-25 % on average (paper: 22.9 %), with
//! the benefit coming from streams whose masked matrices evolve by sparse
//! deltas across epochs (Eq. 11).

use parsecureml::prelude::*;
use psml_bench::*;

fn main() {
    header(
        "Fig. 16 — communication saved by delta+CSR compressed transmission",
        "Epoch training over fixed shares; savings on server<->server bytes.",
    );
    println!(
        "{:<12} {:<10} {:>16} {:>16} {:>10}",
        "Dataset", "Model", "uncompressed", "compressed", "Saved"
    );
    let mut savings = Vec::new();
    // Extra epochs so delta streams dominate the first full sends.
    let epochs = 4;
    for (dataset, model) in evaluation_grid() {
        let on = run_secure_training(
            EngineConfig::parsecureml(),
            model,
            dataset,
            BATCH_SIZE,
            BATCHES,
            epochs,
        );
        let off = run_secure_training(
            EngineConfig::parsecureml().with_compression(false),
            model,
            dataset,
            BATCH_SIZE,
            BATCHES,
            epochs,
        );
        let b_on = on.traffic.server_to_server_wire_bytes();
        let b_off = off.traffic.server_to_server_wire_bytes();
        let saved = 1.0 - b_on as f64 / b_off as f64;
        println!(
            "{:<12} {:<10} {:>16} {:>16} {:>9.1}%",
            dataset.spec().name,
            model.name(),
            b_off,
            b_on,
            saved * 100.0
        );
        savings.push(saved);
    }
    println!();
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "average communication saved: {:.1}%  (paper: 22.9%)",
        avg * 100.0
    );
    assert!(avg > 0.05, "shape violation: compression must clearly help");
    println!("shape check passed: clear average communication reduction");
}

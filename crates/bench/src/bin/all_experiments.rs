//! Runs every table/figure harness in sequence (the full paper
//! reproduction). Each individual binary can also be run on its own:
//!
//! ```text
//! cargo run --release -p psml-bench --bin fig10_overall
//! ```

use std::process::Command;

fn main() {
    let experiments = [
        "table1_slowdown",
        "fig2_breakdown",
        "fig7_rng_crossover",
        "fig8_gemm_proportion",
        "fig10_overall",
        "fig11_online",
        "fig12_offline",
        "fig13_inference",
        "fig14_cpu_opt",
        "fig15_tensor_core",
        "table2_nonsecure",
        "table3_breakdown",
        "fig16_communication",
        "fig17_workload_size",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in experiments {
        println!();
        println!("##### running {name} #####");
        let status = Command::new(exe_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    println!();
    if failures.is_empty() {
        println!("all {} experiments completed with passing shape checks", experiments.len());
    } else {
        println!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}

//! Once-per-process host capability probe.
//!
//! Backend selection needs to know what the host can actually execute:
//! the AMX INT8 tile unit (CPUID, the kernel's xstate opt-in, *and* a
//! correctness cross-check — see [`crate::quant`]), the F16C f16
//! conversion unit, and the AVX2 vector unit the packed kernels dispatch
//! on. Probing at every call site is wasted work, and probing in several
//! places lets the answers drift (one site honoring `PSML_NO_QUANT`,
//! another not). This module runs every probe exactly once and caches an
//! immutable [`HostCaps`] for the process lifetime; every availability
//! question in the workspace reads from here.
//!
//! `PSML_NO_QUANT=1` (read once, at probe time) forces the tile unit off —
//! benches use it for A/B runs. Because the probe is once-per-process,
//! setting the variable after the first capability query has no effect,
//! which is exactly the property simulated reports need: the answer can
//! never change mid-run.

use std::sync::OnceLock;

/// What this host's hardware can run, probed once per process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostCaps {
    /// The AMX INT8 tile backend is usable: CPUID advertises
    /// `amx-tile`+`amx-int8`, the kernel granted tile state, the tile
    /// kernel cross-checked bit-identical against the portable model, and
    /// `PSML_NO_QUANT` is unset.
    pub quant_ring: bool,
    /// The F16C conversion unit (`vcvtps2ph`/`vcvtph2ps`) is present, so
    /// f16 rounding runs 8 lanes per instruction instead of through the
    /// scalar emulation (bit-identical either way).
    pub f16c: bool,
    /// AVX2+FMA are present (the packed GEMM kernels' wide path).
    pub avx2: bool,
}

/// The cached process-wide capability set.
pub fn host_caps() -> &'static HostCaps {
    static CAPS: OnceLock<HostCaps> = OnceLock::new();
    CAPS.get_or_init(|| HostCaps {
        quant_ring: crate::quant::probe_quant_ring(),
        f16c: probe_feature("f16c"),
        avx2: probe_feature("avx2") && probe_feature("fma"),
    })
}

#[cfg(target_arch = "x86_64")]
fn probe_feature(name: &str) -> bool {
    match name {
        "f16c" => std::arch::is_x86_feature_detected!("f16c"),
        "avx2" => std::arch::is_x86_feature_detected!("avx2"),
        "fma" => std::arch::is_x86_feature_detected!("fma"),
        _ => false,
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn probe_feature(_name: &str) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_are_stable_within_the_process() {
        let a = *host_caps();
        let b = *host_caps();
        assert_eq!(a, b);
        assert!(std::ptr::eq(host_caps(), host_caps()));
    }

    #[test]
    fn quant_ring_cap_agrees_with_the_public_predicate() {
        assert_eq!(host_caps().quant_ring, crate::quant::quant_ring_available());
    }
}

//! Owned, row-major dense matrices.

use crate::num::Num;
use psml_parallel::Mt19937;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows x cols` matrix stored row-major in one contiguous buffer.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Num> Matrix<T> {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Builds a matrix from a closure of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the dense wire representation in bytes.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.len() * T::BYTES
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_map(rhs, T::add)
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_map(rhs, T::sub)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix<T>) -> Matrix<T> {
        self.zip_map(rhs, T::mul)
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, rhs: &Matrix<T>) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.add(*b);
        }
    }

    /// In-place element-wise subtraction.
    pub fn sub_assign(&mut self, rhs: &Matrix<T>) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.sub(*b);
        }
    }

    /// Scales every element by `k`.
    pub fn scale(&self, k: T) -> Matrix<T> {
        self.map(|x| x.mul(k))
    }

    /// Negates every element.
    pub fn negate(&self) -> Matrix<T> {
        self.map(T::neg)
    }

    /// Applies `f` element-wise.
    pub fn map(&self, f: impl Fn(T) -> T) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two equal-shaped matrices element-wise.
    pub fn zip_map(&self, rhs: &Matrix<T>, f: impl Fn(T, T) -> T) -> Matrix<T> {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product via the size-dispatching production kernel
    /// (see [`crate::gemm::gemm_auto`]).
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        crate::gemm::gemm_auto(self, rhs)
    }

    /// Horizontal concatenation `[self | rhs]` (Eq. 8's row-block operand).
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hconcat(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, rhs.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation `[self ; rhs]` (Eq. 8's column-block operand).
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vconcat(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, rhs.cols, "vconcat col mismatch");
        let mut data = Vec::with_capacity(self.len() + rhs.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        }
    }

    /// Fraction of elements equal to zero, in `[0, 1]`.
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 1.0;
        }
        let zeros = self.data.iter().filter(|x| x.is_zero()).count();
        zeros as f64 / self.data.len() as f64
    }
}

impl Matrix<f32> {
    /// Fills with uniform values in `[lo, hi)` from a caller-supplied
    /// MT19937 generator (the paper's CPU random-matrix generation path).
    pub fn random(rows: usize, cols: usize, rng: &mut Mt19937, lo: f32, hi: f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_f32(m.as_mut_slice(), lo, hi);
        m
    }

    /// Maximum absolute element-wise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix<f32>) -> f32 {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

impl Matrix<f64> {
    /// Maximum absolute element-wise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix<f64>) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Fills with uniform values in `[lo, hi)` from an MT19937 generator.
    pub fn random_f64(rows: usize, cols: usize, rng: &mut Mt19937, lo: f64, hi: f64) -> Self {
        Matrix::from_fn(rows, cols, |_, _| lo + rng.next_f64() * (hi - lo))
    }
}

impl Matrix<u64> {
    /// Fills with uniform ring elements from an MT19937 generator.
    pub fn random_ring(rows: usize, cols: usize, rng: &mut Mt19937) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        rng.fill_u64(m.as_mut_slice());
        m
    }
}

impl<T: Num> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols, "index out of range");
        &self.data[r * self.cols + c]
    }
}

impl<T: Num> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl<T: Num> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let show_cols = self.cols.min(8);
            write!(f, "  ")?;
            for c in 0..show_cols {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            if self.cols > show_cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32)
    }

    #[test]
    fn construction_and_indexing() {
        let m = mat(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(2, 3)], 11.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(m.byte_size(), 48);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = mat(2, 3);
        let b = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let sum = a.add(&b);
        assert_eq!(sum.sub(&b), a);
    }

    #[test]
    fn in_place_ops_match_pure_ops() {
        let a = mat(4, 4);
        let b = Matrix::from_fn(4, 4, |r, c| (r * c) as f32);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, a.add(&b));
        c.sub_assign(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_involution() {
        let m = mat(3, 5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn hconcat_and_vconcat_shapes() {
        let a = mat(2, 3);
        let b = mat(2, 2);
        let h = a.hconcat(&b);
        assert_eq!(h.shape(), (2, 5));
        assert_eq!(h[(1, 3)], b[(1, 0)]);
        let c = mat(3, 3);
        let v = mat(2, 3).vconcat(&c);
        assert_eq!(v.shape(), (5, 3));
        assert_eq!(v[(2, 0)], c[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "hconcat row mismatch")]
    fn hconcat_rejects_mismatched_rows() {
        let _ = mat(2, 3).hconcat(&mat(3, 3));
    }

    #[test]
    fn zero_fraction_counts_zeros() {
        let mut m = Matrix::<f32>::zeros(2, 2);
        assert_eq!(m.zero_fraction(), 1.0);
        m[(0, 0)] = 5.0;
        assert_eq!(m.zero_fraction(), 0.75);
        assert_eq!(Matrix::<f32>::zeros(0, 0).zero_fraction(), 1.0);
    }

    #[test]
    fn scale_and_negate() {
        let m = mat(2, 2);
        assert_eq!(m.scale(2.0)[(1, 1)], 6.0);
        assert_eq!(m.negate()[(1, 1)], -3.0);
    }

    #[test]
    fn ring_matrix_wraps() {
        let a = Matrix::from_vec(1, 2, vec![u64::MAX, 5]);
        let b = Matrix::from_vec(1, 2, vec![1u64, u64::MAX]);
        let s = a.add(&b);
        assert_eq!(s.as_slice(), &[0, 4]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = Mt19937::new(9);
        let mut r2 = Mt19937::new(9);
        let a = Matrix::random(4, 4, &mut r1, -1.0, 1.0);
        let b = Matrix::random(4, 4, &mut r2, -1.0, 1.0);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn max_abs_diff_and_norm() {
        let a = mat(2, 2);
        let mut b = a.clone();
        b[(1, 0)] += 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
        let unit = Matrix::from_vec(1, 2, vec![3.0f32, 4.0]);
        assert!((unit.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0f32; 3]);
    }
}

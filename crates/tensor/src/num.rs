//! Element trait shared by the float and ring paths.

/// A numeric element type usable in matrices.
///
/// The protocol runs over two very different carriers — IEEE floats (the
/// paper's cuBLAS implementation) and the wrapping ring `Z_{2^64}` (the
/// SecureML fixed-point ring, where exact reconstruction holds). `Num`
/// abstracts exactly the operations both support. **All operations wrap for
/// integer carriers**; this is intentional — additive secret sharing *is*
/// modular arithmetic.
///
/// # Safety
///
/// `Num` is an `unsafe` trait solely because of [`Num::WRAPPING_U64`]: the
/// GEMM kernels trust that promise to reinterpret element slices as `u64`
/// in place, so a false claim is undefined behavior and must not be
/// expressible from safe code. An implementation may set `WRAPPING_U64` to
/// `true` **only** if the type is `#[repr(transparent)]` over `u64` and its
/// `add`/`sub`/`mul`/`neg`/`mul_add` are exactly the wrapping `u64` ring
/// operations. Implementations that leave `WRAPPING_U64` at its default
/// `false` take on no further obligation.
pub unsafe trait Num: Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Modular / float addition.
    fn add(self, rhs: Self) -> Self;
    /// Modular / float subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Modular / float multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Additive inverse.
    fn neg(self) -> Self;
    /// `self * a + b` in one step. Float carriers map to the fused
    /// multiply-add instruction inside the feature-gated GEMM kernels
    /// (single rounding); the ring carrier is exact wrapping arithmetic
    /// either way. Callers that cannot guarantee hardware FMA should
    /// prefer `add`/`mul` — the float fallback goes through libm.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Whether the element equals zero (sparsity test).
    fn is_zero(self) -> bool {
        self == Self::zero()
    }
    /// Set to `true` **only** for types that are `#[repr(transparent)]`
    /// over `u64` and whose `add`/`sub`/`mul`/`neg`/`mul_add` are exactly
    /// the wrapping `u64` ring operations. The GEMM kernels use this
    /// promise to route such carriers through the pinned monomorphic
    /// `u64` micro-kernel, and the limb-split quantized kernel
    /// (`crate::quant`) additionally relies on it to recode the raw bit
    /// pattern into signed byte planes — both reinterpret slices in
    /// place, so a false claim is undefined behavior, which is why
    /// implementing `Num` at all requires `unsafe impl` (see the
    /// trait-level safety contract).
    const WRAPPING_U64: bool = false;
    /// Number of bytes of the element's wire representation.
    const BYTES: usize;
    /// The element's bit pattern, widened to 64 bits (wire encoding; only
    /// the low `BYTES * 8` bits are meaningful).
    fn to_bits64(self) -> u64;
    /// Inverse of [`Num::to_bits64`].
    fn from_bits64(bits: u64) -> Self;
}

// SAFETY: WRAPPING_U64 is left false / set truthfully (u64 is trivially
// itself); see the trait-level contract.
unsafe impl Num for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    const BYTES: usize = 4;
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

// SAFETY: WRAPPING_U64 is left false / set truthfully (u64 is trivially
// itself); see the trait-level contract.
unsafe impl Num for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn neg(self) -> Self {
        -self
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    const BYTES: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

// SAFETY: WRAPPING_U64 is left false / set truthfully (u64 is trivially
// itself); see the trait-level contract.
unsafe impl Num for u64 {
    #[inline]
    fn zero() -> Self {
        0
    }
    #[inline]
    fn one() -> Self {
        1
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.wrapping_mul(rhs)
    }
    #[inline]
    fn neg(self) -> Self {
        self.wrapping_neg()
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self.wrapping_mul(a).wrapping_add(b)
    }
    const WRAPPING_U64: bool = true;
    const BYTES: usize = 8;
    #[inline]
    fn to_bits64(self) -> u64 {
        self
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_wraps_instead_of_panicking() {
        let max = u64::MAX;
        assert_eq!(Num::add(max, 1u64), 0);
        assert_eq!(Num::sub(0u64, 1u64), max);
        assert_eq!(Num::mul(1u64 << 63, 2u64), 0);
        assert_eq!(Num::neg(1u64), max);
        assert_eq!(Num::mul_add(1u64 << 63, 2u64, 7u64), 7);
    }

    #[test]
    fn mul_add_matches_separate_ops_in_ring() {
        for (x, a, b) in [
            (3u64, 5, 7),
            (u64::MAX, u64::MAX, u64::MAX),
            (1 << 40, 1 << 30, 9),
        ] {
            assert_eq!(Num::mul_add(x, a, b), Num::add(Num::mul(x, a), b));
        }
        assert_eq!(Num::mul_add(2.0f32, 3.0, 4.0), 10.0);
        assert_eq!(Num::mul_add(2.0f64, 3.0, 4.0), 10.0);
    }

    #[test]
    fn f32_identities() {
        assert_eq!(<f32 as Num>::zero(), 0.0);
        assert_eq!(<f32 as Num>::one(), 1.0);
        assert_eq!(Num::add(1.5f32, 2.5f32), 4.0);
        assert_eq!(Num::neg(3.0f32), -3.0);
        assert!(Num::is_zero(0.0f32));
        assert!(!Num::is_zero(1.0f32));
    }

    #[test]
    fn neg_is_additive_inverse_in_ring() {
        for x in [0u64, 1, 12345, u64::MAX, 1 << 40] {
            assert_eq!(Num::add(x, Num::neg(x)), 0);
        }
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(<f32 as Num>::BYTES, 4);
        assert_eq!(<f64 as Num>::BYTES, 8);
        assert_eq!(<u64 as Num>::BYTES, 8);
    }

    #[test]
    fn bits_roundtrip() {
        for x in [0.0f32, -1.5, 3.25e-8, f32::MAX] {
            assert_eq!(f32::from_bits64(x.to_bits64()), x);
        }
        for x in [0.0f64, -2.5, 1.7e300] {
            assert_eq!(f64::from_bits64(x.to_bits64()), x);
        }
        for x in [0u64, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::from_bits64(x.to_bits64()), x);
        }
    }
}

//! Property-based tests over the tensor substrate.

use crate::conv::{conv2d_direct, conv2d_im2col, ConvShape};
use crate::gemm::{gemm_auto, gemm_blocked, gemm_naive, gemm_packed, gemm_parallel};
use crate::half::quantize_f16;
use crate::matrix::Matrix;
use crate::quant;
use crate::sparse::{density_of_zeros, Csr, MaybeCompressed};
use proptest::prelude::*;

fn ring_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<u64>> {
    prop::collection::vec(any::<u64>(), rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    /// Blocked and parallel GEMM agree exactly with the naive oracle over
    /// the ring (no float tolerance needed).
    #[test]
    fn gemm_kernels_agree_in_ring((m, k, n) in small_dims(), seed in any::<u64>()) {
        let a = Matrix::from_fn(m, k, |r, c| {
            seed.wrapping_mul(r as u64 + 1).wrapping_add((c as u64) << 7)
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            seed.rotate_left(13).wrapping_mul(c as u64 + 3).wrapping_add(r as u64)
        });
        let oracle = gemm_naive(&a, &b);
        prop_assert_eq!(&gemm_blocked(&a, &b), &oracle);
        prop_assert_eq!(&gemm_parallel(&a, &b, 3), &oracle);
        prop_assert_eq!(&gemm_packed(&a, &b), &oracle);
    }

    /// The production dispatcher is bit-exact against the oracle over the
    /// ring on random shapes up to 100x100, wherever it lands in its
    /// blocked / packed / packed-parallel tiers.
    #[test]
    fn gemm_auto_matches_naive_in_ring((m, k, n) in (1usize..101, 1usize..101, 1usize..101), seed in any::<u64>()) {
        let a = Matrix::from_fn(m, k, |r, c| {
            seed.wrapping_mul(r as u64 ^ 0x243F_6A88).wrapping_add((c as u64) << 17)
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            seed.rotate_left(29).wrapping_add(r as u64).wrapping_mul((c as u64) | 1)
        });
        prop_assert_eq!(gemm_auto(&a, &b), gemm_naive(&a, &b));
    }

    /// GEMM is bilinear over the ring: (A+A')B = AB + A'B and A(B+B') =
    /// AB + AB' — the algebra the Beaver protocol depends on.
    #[test]
    fn gemm_is_bilinear(a1 in ring_matrix(5, 4), a2 in ring_matrix(5, 4), b in ring_matrix(4, 6)) {
        let lhs = gemm_blocked(&a1.add(&a2), &b);
        let rhs = gemm_blocked(&a1, &b).add(&gemm_blocked(&a2, &b));
        prop_assert_eq!(lhs, rhs);
    }

    /// CSR round-trips any dense matrix exactly.
    #[test]
    fn csr_roundtrip(m in ring_matrix(6, 7)) {
        let csr = Csr::from_dense(&m);
        prop_assert_eq!(csr.to_dense(), m);
    }

    /// CSR round-trips sparse matrices (with forced zeros) and `add_into`
    /// matches dense addition.
    #[test]
    fn csr_delta_application(vals in prop::collection::vec((any::<u64>(), 0u8..4), 30)) {
        let data: Vec<u64> = vals.iter().map(|&(v, z)| if z == 0 { v } else { 0 }).collect();
        let delta = Matrix::from_vec(5, 6, data);
        let base = Matrix::from_fn(5, 6, |r, c| (r * 11 + c) as u64);
        let csr = Csr::from_dense(&delta);
        let mut applied = base.clone();
        csr.add_into(&mut applied);
        prop_assert_eq!(applied, base.add(&delta));
    }

    /// The compression policy never selects a representation larger than
    /// dense, and always round-trips.
    #[test]
    fn compression_policy_safe(vals in prop::collection::vec((any::<u64>(), 0u8..5), 64)) {
        let data: Vec<u64> = vals.iter().map(|&(v, z)| if z == 0 { v } else { 0 }).collect();
        let m = Matrix::from_vec(8, 8, data);
        let dense_bytes = m.byte_size();
        let choice = MaybeCompressed::choose(m.clone(), 0.75);
        prop_assert!(choice.byte_size() <= dense_bytes);
        prop_assert_eq!(choice.into_dense(), m);
    }

    /// zero_fraction and density_of_zeros agree.
    #[test]
    fn density_measures_agree(vals in prop::collection::vec(0u64..3, 24)) {
        let m = Matrix::from_vec(4, 6, vals);
        prop_assert!((m.zero_fraction() - density_of_zeros(m.as_slice())).abs() < 1e-12);
    }

    /// im2col + GEMM equals direct convolution over the ring, for arbitrary
    /// small shapes.
    #[test]
    fn conv_lowering_exact(
        ch in 1usize..3,
        h in 3usize..7,
        w in 3usize..7,
        k in 1usize..4,
        f in 1usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(k <= h && k <= w);
        let shape = ConvShape { channels: ch, height: h, width: w, kernel: k, filters: f };
        let input = Matrix::from_fn(ch, h * w, |r, c| {
            seed.wrapping_add((r as u64) << 32).wrapping_mul(c as u64 | 1)
        });
        let kernels = Matrix::from_fn(shape.patch_len(), f, |r, c| {
            seed.rotate_right(7).wrapping_mul((r + 2 * c + 1) as u64)
        });
        prop_assert_eq!(
            conv2d_direct(&input, &kernels, &shape),
            conv2d_im2col(&input, &kernels, &shape)
        );
    }

    /// f16 quantization is idempotent and monotone on finite values.
    #[test]
    fn f16_quantization_properties(a in -7e4f32..7e4, b in -7e4f32..7e4) {
        let qa = quantize_f16(a);
        prop_assert_eq!(quantize_f16(qa), qa);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(quantize_f16(lo) <= quantize_f16(hi));
    }

    /// Transpose is an involution and distributes over addition.
    #[test]
    fn transpose_algebra(a in ring_matrix(4, 7), b in ring_matrix(4, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        prop_assert_eq!(a.add(&b).transpose(), a.transpose().add(&b.transpose()));
    }

    /// (AB)^T = B^T A^T over the ring.
    #[test]
    fn transpose_of_product(a in ring_matrix(3, 5), b in ring_matrix(5, 4)) {
        let lhs = gemm_blocked(&a, &b).transpose();
        let rhs = gemm_blocked(&b.transpose(), &a.transpose());
        prop_assert_eq!(lhs, rhs);
    }

    /// Balanced-digit recoding round-trips every u64 mod 2^64.
    #[test]
    fn quant_digits_roundtrip(v in any::<u64>()) {
        prop_assert_eq!(quant::digits_roundtrip_for_tests(v), v);
    }
}

proptest! {
    // The quantized-GEMM identity cases run the scalar tile model, which
    // is deliberately dumb (it mirrors the hardware per-lane); fewer,
    // broader cases keep the debug-mode suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The limb-split quantized GEMM is bit-identical to the reference
    /// u64 kernel on random shapes and seeds — including non-square
    /// shapes and K larger than the drain budget (64-byte budget forces a
    /// drain after every tile step), on both backends wherever AMX is
    /// available.
    #[test]
    fn quant_gemm_matches_reference(
        (m, k, n) in (1usize..17, 1usize..90, 1usize..17),
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(m, k, |r, c| {
            seed.wrapping_mul(r as u64 ^ 0x243F_6A88).wrapping_add((c as u64) << 17)
        });
        let b = Matrix::from_fn(k, n, |r, c| {
            seed.rotate_left(29).wrapping_add(r as u64).wrapping_mul((c as u64) | 1)
        });
        let oracle = gemm_packed(&a, &b);
        for result in quant::all_backends_for_tests(&a, &b, 64) {
            prop_assert_eq!(&result, &oracle);
        }
        prop_assert_eq!(&quant::gemm_quant(&a, &b), &oracle);
    }
}

#![deny(unsafe_op_in_unsafe_fn)]
//! Dense and sparse matrix substrate for ParSecureML-rs.
//!
//! Everything in the two-party protocol is a matrix operation, so this crate
//! provides the numerical foundation the rest of the workspace builds on:
//!
//! - [`Matrix`]: an owned, row-major dense matrix generic over a [`Num`]
//!   element (IEEE floats for the plaintext/GPU paths, wrapping `u64` for
//!   the `Z_{2^64}` secret-sharing ring),
//! - [`gemm`]: GEMM kernel hierarchy (naive oracle, cache-blocked, packed
//!   register-tiled, pool-parallel, and the `gemm_auto` size dispatcher),
//! - [`conv`]: direct and im2col-based 2-D convolution (the CNN workload),
//! - [`sparse`]: the CSR format plus the 75 %-zeros density test used by the
//!   compressed-transmission design (paper Sec. 4.4),
//! - [`half`]: IEEE binary16 emulation for the Tensor-Core GEMM path
//!   (paper Sec. 5.2),
//! - [`quant`]: the limb-split quantized ring GEMM — the paper's
//!   tensor-core pipeline mapped onto the host's AMX INT8 tile unit, with
//!   a bit-identical portable fallback,
//! - [`mixed`]: real mixed-precision host GEMMs (F16C f16 rounding with
//!   f32 accumulation; scaled int8 over the tile pipeline) — the
//!   execution engine of the host compute backend,
//! - [`caps`]: the once-per-process host capability probe every
//!   availability question reads from.

pub mod caps;
pub mod conv;
pub mod gemm;
pub mod half;
pub mod matrix;
pub mod mixed;
pub mod num;
pub mod quant;
pub mod sparse;

pub use caps::{host_caps, HostCaps};
pub use conv::{conv2d_direct, conv2d_im2col, im2col, ConvShape};
pub use gemm::{
    gemm_auto, gemm_batch, gemm_blocked, gemm_naive, gemm_packed, gemm_packed_parallel,
    gemm_packed_sum, gemm_packed_sum_auto, gemm_packed_with, gemm_parallel, pack_b, pack_b_auto,
    AutoPackedB, PackedB, MR, NR,
};
pub use half::{f16_bits_to_f32, f32_to_f16_bits, quantize_f16};
pub use matrix::Matrix;
pub use mixed::{gemm_f16, gemm_int8_scaled, quantize_f16_matrix};
pub use num::Num;
pub use quant::{
    gemm_i8_i32, gemm_quant, gemm_quant_sum, gemm_quant_with, pack_b_quant, quant_ring_available,
    QuantPackedB,
};
pub use sparse::{density_of_zeros, Csr};

#[cfg(test)]
mod proptests;

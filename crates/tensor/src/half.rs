//! IEEE 754 binary16 emulation for the Tensor-Core GEMM path.
//!
//! Tensor Cores multiply FP16 operands and accumulate in FP32
//! (`cublasSgemmEx` with `CUBLAS_TENSOR_OP_MATH`). Without GPU hardware we
//! reproduce the *numerical* effect exactly: inputs are rounded through
//! binary16 (round-to-nearest-even) before a float multiply-accumulate.
//! This lets the accuracy-loss claims of the paper ("marginal accuracy
//! loss") be checked rather than assumed.

/// Converts an `f32` to its binary16 bit pattern with round-to-nearest-even,
/// handling subnormals, overflow-to-infinity, and NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN: preserve NaN-ness with a quiet-NaN payload bit.
        return if man != 0 {
            sign | 0x7E00
        } else {
            sign | 0x7C00
        };
    }

    // Unbiased exponent re-biased for f16 (bias 15 vs 127).
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal range: keep top 10 mantissa bits with RNE on the rest.
        let exp16 = (unbiased + 15) as u32;
        let man16 = man >> 13;
        let round_bits = man & 0x1FFF;
        let mut out = ((exp16 << 10) | man16) as u16;
        // Round to nearest, ties to even.
        if round_bits > 0x1000 || (round_bits == 0x1000 && (man16 & 1) == 1) {
            out += 1; // may carry into the exponent; that is correct RNE
        }
        return sign | out;
    }
    if unbiased >= -25 {
        // Subnormal range: shift the implicit leading 1 into the mantissa.
        let full_man = man | 0x0080_0000;
        let shift = (-unbiased - 14 + 13) as u32; // 14..24
        let man16 = full_man >> shift;
        let round_mask = (1u32 << shift) - 1;
        let round_bits = full_man & round_mask;
        let half = 1u32 << (shift - 1);
        let mut out = man16 as u16;
        if round_bits > half || (round_bits == half && (man16 & 1) == 1) {
            out += 1;
        }
        return sign | out;
    }
    sign // underflow to signed zero
}

/// Converts a binary16 bit pattern back to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;

    let bits = if exp == 0x1F {
        // Inf / NaN.
        sign | 0x7F80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut m = man;
            while m & 0x0400 == 0 {
                m <<= 1;
                e += 1;
            }
            let exp32 = (127 - 15 - e) as u32;
            sign | (exp32 << 23) | ((m & 0x03FF) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Rounds an `f32` through binary16 and back — the precision loss a Tensor
/// Core input operand experiences.
#[inline]
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_representable_values_roundtrip() {
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            1024.0,
            65504.0,
            6.103_515_6e-5,
            1.5,
            0.25,
        ] {
            assert_eq!(quantize_f16(v), v, "value {v} should be exact in f16");
        }
        // Signed zero preserved.
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(f32_to_f16_bits(70000.0), 0x7C00);
        assert_eq!(f32_to_f16_bits(-1e9), 0xFC00);
    }

    #[test]
    fn underflow_goes_to_zero() {
        assert_eq!(f32_to_f16_bits(1e-10), 0x0000);
        assert_eq!(f32_to_f16_bits(-1e-10), 0x8000);
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest positive f16 subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        // Largest subnormal.
        let big_sub = f16_bits_to_f32(0x03FF);
        assert_eq!(f32_to_f16_bits(big_sub), 0x03FF);
    }

    #[test]
    fn nan_is_preserved_as_nan() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn rne_ties_to_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1.0 + 2^-10); RNE rounds to the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(quantize_f16(halfway), 1.0);
        // 1.0 + 3*2^-11 is halfway between odd and even; rounds up to even.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(quantize_f16(halfway_up), 1.0 + 2.0 * 2.0f32.powi(-10));
    }

    #[test]
    fn relative_error_bounded_in_normal_range() {
        // f16 has 11 significand bits: relative error <= 2^-11.
        let mut x = 1e-4f32;
        while x < 6e4 {
            let q = quantize_f16(x);
            let rel = ((q - x) / x).abs();
            assert!(rel <= 2.0f32.powi(-11), "x={x} q={q} rel={rel}");
            x *= 1.618;
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        for i in 0..2000 {
            let x = (i as f32 - 1000.0) * 0.37;
            let q = quantize_f16(x);
            assert_eq!(quantize_f16(q), q);
        }
    }

    #[test]
    fn all_f16_bit_patterns_roundtrip_through_f32() {
        // Exhaustive: every finite f16 converts to f32 and back unchanged.
        for h in 0u16..=0xFFFF {
            let exp = (h >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // Inf/NaN payloads normalize; skip.
            }
            let f = f16_bits_to_f32(h);
            assert_eq!(f32_to_f16_bits(f), h, "pattern {h:#06x}");
        }
    }
}

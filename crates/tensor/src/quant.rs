//! Limb-split quantized ring GEMM: the paper's tensor-core pipeline
//! (Sec. 5.2) mapped onto the host's AMX INT8 tile unit.
//!
//! The paper runs `Z_{2^16}` ring GEMMs on tensor cores by splitting each
//! operand into low-precision limbs, multiplying the limbs on the dense
//! low-precision multiplier array, and recombining exactly. This module is
//! the same construction for our `Z_{2^64}` carriers:
//!
//! - every `u64` element is recoded into [`LIMBS`] = 8 **balanced signed
//!   8-bit digits** `d_p ∈ [-128, 127]` with `v ≡ Σ_p d_p·2^{8p}
//!   (mod 2^64)` (the carry out of the top digit vanishes mod 2^64);
//! - the product becomes `C ≡ Σ_s 2^{8s} C_s` with
//!   `C_s = Σ_{p+q=s} A_p·B_q` — digit pairs with `p+q ≥ 8` wrap away
//!   entirely, so only the 36 of 64 limb-product GEMMs with `p+q < 8` are
//!   ever computed;
//! - each live limb GEMM is an i8×i8→i32 product, which is exactly the
//!   shape of the `tdpbssd` AMX tile instruction (and of the portable
//!   scalar model used as fallback and cross-check);
//! - i32 tile accumulators are **drained on a K budget** so the shifts
//!   that need exact values never overflow (see the exactness argument
//!   below), and drained partials are recombined into the `u64` output
//!   with wrapping shifted adds.
//!
//! The result is **bit-for-bit identical** to the pinned `u64` kernel in
//! [`crate::gemm`]: ring arithmetic is exact, so only speed changes.
//!
//! ## Exactness argument
//!
//! One `tdpbssd` step accumulates 64 products of magnitude ≤ 2^14 per i32
//! lane. For output shift `s` the accumulator sums `(s+1)` digit-pair
//! passes over K, so after `t` accumulated K-bytes the true value is
//! bounded by `t·2^14`. Draining every [`DRAIN_BUDGET_KB`] = 2^16 K-bytes
//! keeps `|C_s| ≤ 2^30 < 2^31`: the i32 never wraps where exactness is
//! required. For `s ≥ 4` the kept bits of the volume are `C_s mod
//! 2^{64-8s} ⊆ mod 2^32`, so i32 wraparound is itself exact and no
//! draining is needed.
//!
//! ## Availability
//!
//! The AMX backend needs `amx-tile`/`amx-int8` in CPUID **and** a
//! per-process `arch_prctl(ARCH_REQ_XCOMP_PERM, XFEATURE_XTILEDATA)`
//! opt-in; [`quant_ring_available`] performs both once, then cross-checks
//! the tile kernel against the portable backend on a small product before
//! reporting true. `PSML_NO_QUANT=1` forces the answer to false (used by
//! benches for A/B runs). The portable backend computes the identical
//! function (same drain schedule, same wrapping i32 model), so results do
//! not depend on which backend ran — only the host's wall-clock does,
//! which keeps simulated `RunReport`s host-independent.

use crate::gemm::{cast_slice, cast_slice_mut};
use crate::matrix::Matrix;
use crate::num::Num;
use std::cell::RefCell;
use std::fmt;

/// Signed 8-bit digits per `u64` ring element.
pub const LIMBS: usize = 8;

/// Live limb-product volumes: pairs `(p, q)` with `p + q < LIMBS`.
/// The other 28 pairs shift by ≥ 64 bits and vanish mod 2^64.
pub const LIVE_LIMB_PAIRS: usize = LIMBS * (LIMBS + 1) / 2;

/// K-bytes consumed by one tile step (one `tdpbssd` over a 16×64 tile).
const TILE_K_BYTES: usize = 64;

/// Output block edge: 2×2 tiles of 16×16 i32 accumulators.
const BLOCK_MN: usize = 32;

/// Accumulated K-bytes per i32 lane between drains for shifts `s < 4`
/// (where exact values are required): `2^16 · 2^14 = 2^30 < 2^31`.
const DRAIN_BUDGET_KB: usize = 1 << 16;

fn pad_to(x: usize, mult: usize) -> usize {
    x.div_ceil(mult) * mult
}

/// Retained plane buffers per pool (bounds per-thread memory held back
/// from the allocator to a few working sets).
const POOL_MAX: usize = 4;

thread_local! {
    /// Recycled limb-plane buffers. Per-call packing allocates megabytes
    /// that live for exactly one GEMM; returning them to the allocator
    /// makes every call pay thousands of first-touch page faults, which
    /// dominate the kernel under virtualized hosts (measured ~20 ms of a
    /// ~90 ms 1024³ product on a single-vCPU microVM). Recycling keeps
    /// the pages mapped. The buffers hold share-derived limb bytes
    /// between calls — the same retention window allocator-recycled
    /// pages already have, and nothing ever reads a pooled buffer before
    /// the next pack fully rewrites it (bijective tile layout, or an
    /// explicit re-zero when the shape leaves padding).
    static PLANE_POOL: RefCell<Vec<Vec<i8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a recycled buffer (or a fresh one) of exactly `len` bytes.
///
/// Contents are **stale** (whatever the previous pack left) unless
/// `zeroed` is set: the tile layouts below are bijections onto the
/// plane, so a pack over tile-aligned operands rewrites every byte and
/// re-zeroing 2·8 MB up front (at 1024³) would be pure memory traffic.
/// Packs of padded shapes pass `zeroed = true` so the pad lanes
/// contribute exact zeros to the accumulators.
fn pool_take(len: usize, zeroed: bool) -> Vec<i8> {
    let mut buf = PLANE_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    if zeroed {
        buf.clear();
    } else if buf.len() > len {
        buf.truncate(len);
    }
    buf.resize(len, 0);
    buf
}

/// Returns a plane buffer to the pool for the next pack to reuse.
fn pool_put(buf: Vec<i8>) {
    PLANE_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_MAX {
            pool.push(buf);
        }
    });
}

/// Recode `v` as 8 balanced signed digits: `v ≡ Σ_p d_p·2^{8p} (mod 2^64)`
/// with every `d_p ∈ [-128, 127]`. The carry out of digit 7 is worth 2^64
/// and drops in the ring.
///
/// Branchless: adding `0x80` to every byte with a single 64-bit add
/// propagates exactly the balanced-recoding carries (byte `p` carries out
/// iff `v_p + c_p ≥ 128`), leaving `v_p + c_p - 256·c_{p+1} + 128` in
/// byte `p`; xoring `0x80` back subtracts the bias mod 256, so each byte
/// read as `i8` is the balanced digit.
#[inline]
fn balanced_digits(v: u64) -> [i8; LIMBS] {
    const BIAS: u64 = 0x8080_8080_8080_8080;
    let w = v.wrapping_add(BIAS) ^ BIAS;
    w.to_le_bytes().map(|b| b as i8)
}

/// Inverse of [`balanced_digits`] mod 2^64 (test oracle for the
/// round-trip property).
#[cfg(test)]
pub(crate) fn recombine_digits(d: &[i8; LIMBS]) -> u64 {
    let mut v = 0u64;
    for (p, &x) in d.iter().enumerate() {
        v = v.wrapping_add((x as i64 as u64) << (8 * p));
    }
    v
}

/// `A` recoded into 8 byte planes, each laid out as 16-row panels of
/// contiguous 16×64-byte tiles so the kernel streams 1 KiB tile loads.
///
/// Plane `p`, element `(i, kb)` lives at
/// `(i/16)·k_pad·16 + (kb/64)·1024 + (i%16)·64 + kb%64`.
struct QuantA {
    m_pad: usize,
    k_pad: usize,
    planes: Vec<i8>,
}

impl QuantA {
    fn plane(&self, p: usize) -> &[i8] {
        let sz = self.m_pad * self.k_pad;
        &self.planes[p * sz..(p + 1) * sz]
    }
}

/// `B` recoded into 8 byte planes in the VNNI interleave the tile
/// multiplier consumes: 16-column panels where K-group `r` stores the 4
/// consecutive K-bytes of each column interleaved
/// (`panel[(kb/4)·64 + 4·(j%16) + kb%4] = digit(B[kb, j])`).
///
/// Like [`crate::gemm::PackedB`] this is packed once and reused across
/// every left-hand side — in particular across both servers' fused Eq. 8
/// evaluations. The planes are derived from a (possibly secret-shared)
/// operand, so `Debug` redacts the payload (psml-secret).
#[derive(Clone)]
pub struct QuantPackedB {
    k: usize,
    n: usize,
    n_pad: usize,
    k_pad: usize,
    planes: Vec<i8>,
}

impl QuantPackedB {
    /// Inner dimension (rows of the packed `B`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the packed `B`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the packed byte planes.
    pub fn byte_size(&self) -> usize {
        self.planes.len()
    }

    fn plane(&self, q: usize) -> &[i8] {
        let sz = self.n_pad * self.k_pad;
        &self.planes[q * sz..(q + 1) * sz]
    }
}

impl fmt::Debug for QuantPackedB {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Shape only: the byte planes are a share-derived operand.
        f.debug_struct("QuantPackedB")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("planes", &"<redacted>")
            .finish()
    }
}

fn pack_a_planes(m: usize, k: usize, a: &[u64]) -> QuantA {
    let m_pad = pad_to(m.max(1), BLOCK_MN);
    let k_pad = pad_to(k, TILE_K_BYTES);
    let plane_sz = m_pad * k_pad;
    let mut planes = pool_take(LIMBS * plane_sz, m_pad != m || k_pad != k);
    let panel = k_pad * 16;
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let row_base = (i / 16) * panel + (i % 16) * 64;
        for (kk, &v) in row.iter().enumerate() {
            let d = balanced_digits(v);
            let at = row_base + (kk / 64) * 1024 + kk % 64;
            for (p, &dp) in d.iter().enumerate() {
                planes[p * plane_sz + at] = dp;
            }
        }
    }
    QuantA {
        m_pad,
        k_pad,
        planes,
    }
}

fn pack_b_planes(k: usize, n: usize, b: &[u64]) -> QuantPackedB {
    let n_pad = pad_to(n.max(1), BLOCK_MN);
    let k_pad = pad_to(k, TILE_K_BYTES);
    let plane_sz = n_pad * k_pad;
    let mut planes = pool_take(LIMBS * plane_sz, n_pad != n || k_pad != k);
    let panel = k_pad * 16;
    for kk in 0..k {
        let row = &b[kk * n..(kk + 1) * n];
        let k_base = (kk / 4) * 64 + kk % 4;
        for (j, &v) in row.iter().enumerate() {
            let d = balanced_digits(v);
            let at = (j / 16) * panel + k_base + 4 * (j % 16);
            for (q, &dq) in d.iter().enumerate() {
                planes[q * plane_sz + at] = dq;
            }
        }
    }
    QuantPackedB {
        k,
        n,
        n_pad,
        k_pad,
        planes,
    }
}

/// One 32×32 output block of i32 accumulators, fed tile-pair steps.
///
/// Both implementations compute the identical function — same operand
/// layout, same i32 wrapping accumulation — so a drain returns the same
/// 1024 lanes regardless of backend.
trait Backend {
    /// Per-call setup (tile palette configuration).
    fn begin(&mut self);
    /// Clears the four accumulator tiles.
    fn zero(&mut self);
    /// Accumulates `steps` consecutive 1 KiB tile pairs: `a0`/`a1` are the
    /// two 16-row A panels of the block, `b0`/`b1` the two 16-column B
    /// panels.
    ///
    /// # Safety
    ///
    /// Each pointer must be valid for `steps * 1024` bytes of initialized
    /// data, and `steps >= 1`.
    unsafe fn step(
        &mut self,
        a0: *const i8,
        a1: *const i8,
        b0: *const i8,
        b1: *const i8,
        steps: usize,
    );
    /// Copies the 32×32 accumulator block into `scratch` (row-major).
    fn drain(&mut self, scratch: &mut [i32; BLOCK_MN * BLOCK_MN]);
    /// Per-call teardown (tile state release).
    fn end(&mut self);
}

/// Scalar model of the tile pipeline. Used on hosts without AMX, and as
/// the cross-check oracle during availability detection.
struct PortableBackend {
    c: [[i32; BLOCK_MN]; BLOCK_MN],
}

impl PortableBackend {
    fn new() -> Self {
        PortableBackend {
            c: [[0; BLOCK_MN]; BLOCK_MN],
        }
    }

    /// `tdpbssd` per-tile model:
    /// `C[i][j] += Σ_r Σ_t A[i][4r+t]·B[r][4j+t]` with wrapping i32
    /// accumulation, mirroring the hardware exactly.
    fn tile_madd(&mut self, ro: usize, co: usize, a: &[i8], b: &[i8]) {
        for i in 0..16 {
            let arow = &a[i * 64..(i + 1) * 64];
            let crow = &mut self.c[ro + i];
            for r in 0..16 {
                let brow = &b[r * 64..(r + 1) * 64];
                for t in 0..4 {
                    let av = arow[4 * r + t] as i32;
                    if av == 0 {
                        continue;
                    }
                    for j in 0..16 {
                        crow[co + j] = crow[co + j].wrapping_add(av * brow[4 * j + t] as i32);
                    }
                }
            }
        }
    }
}

impl Backend for PortableBackend {
    fn begin(&mut self) {}

    fn zero(&mut self) {
        self.c = [[0; BLOCK_MN]; BLOCK_MN];
    }

    // SAFETY: upholds the trait contract by reading exactly
    // `steps * 1024` bytes from each pointer, nothing else.
    unsafe fn step(
        &mut self,
        a0: *const i8,
        a1: *const i8,
        b0: *const i8,
        b1: *const i8,
        steps: usize,
    ) {
        // SAFETY: the fn-level contract guarantees each pointer covers
        // steps * 1024 initialized bytes.
        let (a0, a1, b0, b1) = unsafe {
            (
                std::slice::from_raw_parts(a0, steps * 1024),
                std::slice::from_raw_parts(a1, steps * 1024),
                std::slice::from_raw_parts(b0, steps * 1024),
                std::slice::from_raw_parts(b1, steps * 1024),
            )
        };
        for st in 0..steps {
            let r = st * 1024..(st + 1) * 1024;
            self.tile_madd(0, 0, &a0[r.clone()], &b0[r.clone()]);
            self.tile_madd(0, 16, &a0[r.clone()], &b1[r.clone()]);
            self.tile_madd(16, 0, &a1[r.clone()], &b0[r.clone()]);
            self.tile_madd(16, 16, &a1[r.clone()], &b1[r]);
        }
    }

    fn drain(&mut self, scratch: &mut [i32; BLOCK_MN * BLOCK_MN]) {
        for (r, row) in self.c.iter().enumerate() {
            scratch[r * BLOCK_MN..(r + 1) * BLOCK_MN].copy_from_slice(row);
        }
    }

    fn end(&mut self) {}
}

#[cfg(target_arch = "x86_64")]
mod amx {
    //! AMX tile backend. Rust's AMX intrinsics are unstable, so the five
    //! tile operations are issued as inline assembly; LLVM never emits
    //! tile instructions on its own (`tmm` registers are not allocatable
    //!  without the intrinsics), so tile state set in one `asm!` block is
    //! preserved across the safe Rust between blocks, and the OS
    //! context-switches it via XSAVE once the permission below is granted.

    use super::{Backend, BLOCK_MN};
    use std::arch::asm;

    const ARCH_REQ_XCOMP_PERM: u64 = 0x1023;
    const XFEATURE_XTILEDATA: u64 = 18;

    /// Asks the kernel to enable AMX tile state for this process.
    pub(super) fn request_permission() -> bool {
        let ret: i64;
        // SAFETY: arch_prctl(ARCH_REQ_XCOMP_PERM, XTILEDATA) only toggles
        // this process's xstate permission; no memory is touched.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 158u64 => ret,
                in("rdi") ARCH_REQ_XCOMP_PERM,
                in("rsi") XFEATURE_XTILEDATA,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret == 0
    }

    /// CPUID leaf 7 subleaf 0 EDX bits 24 (amx-tile) and 25 (amx-int8).
    pub(super) fn has_amx_int8() -> bool {
        let r = std::arch::x86_64::__cpuid_count(7, 0);
        (r.edx >> 24) & 1 == 1 && (r.edx >> 25) & 1 == 1
    }

    /// `ldtilecfg` palette: all eight tiles as 16 rows × 64 bytes.
    /// tmm0-3 hold the 2×2 i32 accumulator block, tmm4-5 the A panels,
    /// tmm6-7 the B panels.
    #[repr(C, align(64))]
    struct TileConfig {
        palette: u8,
        start_row: u8,
        _rsvd: [u8; 14],
        colsb: [u16; 16],
        rows: [u8; 16],
    }

    fn full_config() -> TileConfig {
        let mut c = TileConfig {
            palette: 1,
            start_row: 0,
            _rsvd: [0; 14],
            colsb: [0; 16],
            rows: [0; 16],
        };
        for t in 0..8 {
            c.colsb[t] = 64;
            c.rows[t] = 16;
        }
        c
    }

    /// The tile backend. Only constructed after [`super::quant_ring_available`]
    /// verified CPUID, the xstate permission, and a correctness
    /// cross-check against the portable model.
    pub(super) struct AmxBackend;

    impl Backend for AmxBackend {
        fn begin(&mut self) {
            let cfg = full_config();
            // SAFETY: AMX availability is the construction invariant of
            // this type; ldtilecfg only reads the 64-byte config.
            unsafe {
                asm!(
                    "ldtilecfg [{cfg}]",
                    cfg = in(reg) &cfg,
                    options(nostack, readonly),
                );
            }
        }

        fn zero(&mut self) {
            // SAFETY: tiles configured in begin(); tilezero touches no
            // memory.
            unsafe {
                asm!(
                    "tilezero tmm0",
                    "tilezero tmm1",
                    "tilezero tmm2",
                    "tilezero tmm3",
                    options(nostack, nomem, preserves_flags),
                );
            }
        }

        // SAFETY: upholds the trait contract — the asm loop reads exactly
        // `steps * 1024` bytes per operand and clobbers only tile state.
        unsafe fn step(
            &mut self,
            a0: *const i8,
            a1: *const i8,
            b0: *const i8,
            b1: *const i8,
            steps: usize,
        ) {
            // SAFETY: fn-level contract (pointers cover steps*1024 bytes,
            // steps >= 1) plus the construction invariant; the loop only
            // reads memory and updates tile registers.
            unsafe {
                asm!(
                    "2:",
                    "tileloadd tmm4, [{a0} + {s64}]",
                    "tileloadd tmm6, [{b0} + {s64}]",
                    "tdpbssd tmm0, tmm4, tmm6",
                    "tileloadd tmm7, [{b1} + {s64}]",
                    "tdpbssd tmm1, tmm4, tmm7",
                    "tileloadd tmm5, [{a1} + {s64}]",
                    "tdpbssd tmm2, tmm5, tmm6",
                    "tdpbssd tmm3, tmm5, tmm7",
                    "add {a0}, 1024",
                    "add {a1}, 1024",
                    "add {b0}, 1024",
                    "add {b1}, 1024",
                    "dec {n}",
                    "jnz 2b",
                    a0 = inout(reg) a0 => _,
                    a1 = inout(reg) a1 => _,
                    b0 = inout(reg) b0 => _,
                    b1 = inout(reg) b1 => _,
                    n = inout(reg) steps => _,
                    s64 = in(reg) 64usize,
                    options(nostack, readonly),
                );
            }
        }

        fn drain(&mut self, scratch: &mut [i32; BLOCK_MN * BLOCK_MN]) {
            let p = scratch.as_mut_ptr();
            // SAFETY: scratch is 32x32 i32 = 4 KiB; the four stores cover
            // its quadrants at row stride 128 bytes.
            unsafe {
                asm!(
                    "tilestored [{c0} + {s128}], tmm0",
                    "tilestored [{c1} + {s128}], tmm1",
                    "tilestored [{c2} + {s128}], tmm2",
                    "tilestored [{c3} + {s128}], tmm3",
                    c0 = in(reg) p,
                    c1 = in(reg) p.add(16),
                    c2 = in(reg) p.add(16 * BLOCK_MN),
                    c3 = in(reg) p.add(16 * BLOCK_MN + 16),
                    s128 = in(reg) 128usize,
                    options(nostack),
                );
            }
        }

        fn end(&mut self) {
            // SAFETY: releases this thread's tile state; no memory.
            unsafe {
                asm!("tilerelease", options(nostack, nomem, preserves_flags));
            }
        }
    }
}

/// Which block engine executes the limb GEMMs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BackendKind {
    /// AMX INT8 tiles (x86_64 hosts that pass the availability probe).
    #[cfg(target_arch = "x86_64")]
    Amx,
    /// Scalar model of the same pipeline — bit-identical results.
    Portable,
}

fn best_backend() -> BackendKind {
    #[cfg(target_arch = "x86_64")]
    if quant_ring_available() {
        return BackendKind::Amx;
    }
    BackendKind::Portable
}

/// Adds one drained 32×32 block into the `u64` output at shift `8·s`,
/// wrapping: `out += sext(lane) · 2^{8s} (mod 2^64)`.
fn add_block(
    out: &mut [u64],
    m: usize,
    n: usize,
    i0: usize,
    j0: usize,
    s: usize,
    scratch: &[i32; BLOCK_MN * BLOCK_MN],
) {
    let shift = 8 * s;
    let rows = BLOCK_MN.min(m - i0);
    let cols = BLOCK_MN.min(n - j0);
    for r in 0..rows {
        let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
        let srow = &scratch[r * BLOCK_MN..r * BLOCK_MN + cols];
        for (o, &v) in orow.iter_mut().zip(srow) {
            *o = o.wrapping_add((v as i64 as u64) << shift);
        }
    }
}

/// Output-column blocks per cache tile: each `jb` touches 2 B panels per
/// plane (8 planes × 32 KiB = 256 KiB at k = 1024), so a group of 8 keeps
/// ~2 MiB of B resident in L2 while a full `ib` sweep streams each A
/// panel group once per *group* instead of once per *block column* —
/// several times less A traffic on large square products, which are
/// memory-bound (measured ~15% off a 1024³ ring GEMM; 4–12 bench within
/// noise of each other, 8 divides the padded block counts evenly).
const JB_TILE: usize = 8;

/// Block driver: for every 32×32 output block and every output shift `s`,
/// accumulates the `s+1` live digit-pair volumes of every term, draining
/// on the K budget wherever exactness demands it. Blocks are visited in
/// L2-tiled column groups (see [`JB_TILE`]); every block's accumulation
/// is independent, so the visit order cannot change any output bit.
fn run<B: Backend>(
    be: &mut B,
    m: usize,
    n: usize,
    terms: &[(&QuantA, &QuantPackedB)],
    out: &mut [u64],
    budget_kb: usize,
) {
    assert!(budget_kb >= TILE_K_BYTES && budget_kb.is_multiple_of(TILE_K_BYTES));
    let m_pad = pad_to(m, BLOCK_MN);
    let n_pad = pad_to(n, BLOCK_MN);
    let (mb, nb) = (m_pad / BLOCK_MN, n_pad / BLOCK_MN);
    let mut scratch = [0i32; BLOCK_MN * BLOCK_MN];
    be.begin();
    for jbg in (0..nb).step_by(JB_TILE) {
        for ib in 0..mb {
            let i0 = ib * BLOCK_MN;
            for jb in jbg..nb.min(jbg + JB_TILE) {
                let j0 = jb * BLOCK_MN;
                for s in 0..LIMBS {
                    be.zero();
                    // For s >= 4 only C_s mod 2^(64-8s) ⊆ mod 2^32 survives
                    // the shift, so i32 wraparound is exact and no drain is
                    // needed; s < 4 drains on the budget.
                    let exact = s < 4;
                    let mut budget = budget_kb;
                    for &(qa, qb) in terms {
                        debug_assert_eq!(qa.k_pad, qb.k_pad);
                        let a_panel = qa.k_pad * 16;
                        for p in 0..=s {
                            let q = s - p;
                            let ap = qa.plane(p);
                            let bp = qb.plane(q);
                            let a0 = ap[2 * ib * a_panel..].as_ptr();
                            let a1 = ap[(2 * ib + 1) * a_panel..].as_ptr();
                            let b0 = bp[2 * jb * a_panel..].as_ptr();
                            let b1 = bp[(2 * jb + 1) * a_panel..].as_ptr();
                            let mut kb = 0;
                            while kb < qa.k_pad {
                                let take = if exact {
                                    budget.min(qa.k_pad - kb)
                                } else {
                                    qa.k_pad - kb
                                };
                                let steps = take / TILE_K_BYTES;
                                // SAFETY: each panel holds k_pad * 16 bytes and
                                // kb*16 + steps*1024 = (kb + take)*16 <= that.
                                unsafe {
                                    be.step(
                                        a0.add(kb * 16),
                                        a1.add(kb * 16),
                                        b0.add(kb * 16),
                                        b1.add(kb * 16),
                                        steps,
                                    );
                                }
                                kb += take;
                                if exact {
                                    budget -= take;
                                    if budget == 0 {
                                        be.drain(&mut scratch);
                                        be.zero();
                                        add_block(out, m, n, i0, j0, s, &scratch);
                                        budget = budget_kb;
                                    }
                                }
                            }
                        }
                    }
                    be.drain(&mut scratch);
                    add_block(out, m, n, i0, j0, s, &scratch);
                }
            }
        }
    }
    be.end();
}

fn gemm_quant_sum_into(
    kind: BackendKind,
    budget_kb: usize,
    m: usize,
    n: usize,
    terms: &[(&QuantA, &QuantPackedB)],
    out: &mut [u64],
) {
    match kind {
        #[cfg(target_arch = "x86_64")]
        BackendKind::Amx => run(&mut amx::AmxBackend, m, n, terms, out, budget_kb),
        BackendKind::Portable => run(&mut PortableBackend::new(), m, n, terms, out, budget_kb),
    }
}

/// Packs raw `i8` bytes into one A tile plane (same layout as one limb
/// plane of [`pack_a_planes`], without the digit recoding).
fn pack_a_plane_i8(m: usize, k: usize, a: &[i8]) -> QuantA {
    let m_pad = pad_to(m.max(1), BLOCK_MN);
    let k_pad = pad_to(k.max(1), TILE_K_BYTES);
    let mut planes = pool_take(m_pad * k_pad, m_pad != m || k_pad != k);
    let panel = k_pad * 16;
    for i in 0..m {
        let row = &a[i * k..(i + 1) * k];
        let row_base = (i / 16) * panel + (i % 16) * 64;
        for (kk, &v) in row.iter().enumerate() {
            planes[row_base + (kk / 64) * 1024 + kk % 64] = v;
        }
    }
    QuantA {
        m_pad,
        k_pad,
        planes,
    }
}

/// Packs raw `i8` bytes into one VNNI-interleaved B tile plane (same
/// layout as one limb plane of [`pack_b_planes`]).
fn pack_b_plane_i8(k: usize, n: usize, b: &[i8]) -> QuantPackedB {
    let n_pad = pad_to(n.max(1), BLOCK_MN);
    let k_pad = pad_to(k.max(1), TILE_K_BYTES);
    let mut planes = pool_take(n_pad * k_pad, n_pad != n || k_pad != k);
    let panel = k_pad * 16;
    for kk in 0..k {
        let row = &b[kk * n..(kk + 1) * n];
        let k_base = (kk / 4) * 64 + kk % 4;
        for (j, &v) in row.iter().enumerate() {
            planes[(j / 16) * panel + k_base + 4 * (j % 16)] = v;
        }
    }
    QuantPackedB {
        k,
        n,
        n_pad,
        k_pad,
        planes,
    }
}

/// Single-plane block driver: one i8 A plane times one i8 B plane into
/// i32 outputs, no shifts, no drain schedule — each block accumulates its
/// whole K extent in the (wrapping) i32 tiles and is stored once.
fn run_plane<B: Backend>(
    be: &mut B,
    m: usize,
    n: usize,
    qa: &QuantA,
    pb: &QuantPackedB,
    out: &mut [i32],
) {
    let b_k_pad = pb.k_pad;
    debug_assert_eq!(qa.k_pad, b_k_pad);
    let (mb, nb) = (qa.m_pad / BLOCK_MN, pb.n_pad / BLOCK_MN);
    let a_panel = qa.k_pad * 16;
    let steps = qa.k_pad / TILE_K_BYTES;
    let (ap, bp) = (qa.plane(0), pb.plane(0));
    let mut scratch = [0i32; BLOCK_MN * BLOCK_MN];
    be.begin();
    for ib in 0..mb {
        let i0 = ib * BLOCK_MN;
        let a0 = ap[2 * ib * a_panel..].as_ptr();
        let a1 = ap[(2 * ib + 1) * a_panel..].as_ptr();
        for jb in 0..nb {
            let j0 = jb * BLOCK_MN;
            let b0 = bp[2 * jb * a_panel..].as_ptr();
            let b1 = bp[(2 * jb + 1) * a_panel..].as_ptr();
            be.zero();
            // SAFETY: each panel holds k_pad * 16 = steps * 1024 bytes,
            // and steps >= 1 because k_pad is padded up from k >= 1.
            unsafe {
                be.step(a0, a1, b0, b1, steps);
            }
            be.drain(&mut scratch);
            let rows = BLOCK_MN.min(m - i0);
            let cols = BLOCK_MN.min(n - j0);
            for r in 0..rows {
                out[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols]
                    .copy_from_slice(&scratch[r * BLOCK_MN..r * BLOCK_MN + cols]);
            }
        }
    }
    be.end();
}

/// Plain `i8 × i8 → i32` GEMM on the tile pipeline (row-major operands,
/// row-major output): `out[i·n + j] = Σ_kk a[i·k + kk] · b[kk·n + j]`
/// with wrapping i32 accumulation. Runs on AMX when
/// [`quant_ring_available`] holds, and on the bit-identical portable
/// model otherwise.
///
/// This is the execution engine of the mixed-precision host backend's
/// scaled int8 path (`crate::mixed::gemm_int8_scaled`): with operands in
/// `[-127, 127]` each product is at most `127² < 2^14`, so accumulation
/// is exact (no i32 wrap) whenever `k ≤ 2^17` — callers wanting exact
/// sums must respect that bound.
pub fn gemm_i8_i32(m: usize, k: usize, n: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A length must be m*k");
    assert_eq!(b.len(), k * n, "B length must be k*n");
    let mut out = vec![0i32; m * n];
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    let qa = pack_a_plane_i8(m, k, a);
    let qb = pack_b_plane_i8(k, n, b);
    match best_backend() {
        #[cfg(target_arch = "x86_64")]
        BackendKind::Amx => run_plane(&mut amx::AmxBackend, m, n, &qa, &qb, &mut out),
        BackendKind::Portable => run_plane(&mut PortableBackend::new(), m, n, &qa, &qb, &mut out),
    }
    pool_put(qa.planes);
    pool_put(qb.planes);
    out
}

/// True when the AMX tile backend is usable on this host: CPUID
/// advertises `amx-tile`+`amx-int8`, the kernel granted tile state, and
/// the tile kernel cross-checked bit-identical against the portable model
/// on a probe product. `PSML_NO_QUANT=1` forces false. Detection runs
/// once per process (cached in [`crate::caps::host_caps`] alongside every
/// other hardware capability); results never vary within a process.
pub fn quant_ring_available() -> bool {
    crate::caps::host_caps().quant_ring
}

/// The raw availability probe behind [`quant_ring_available`]. Called
/// exactly once, by [`crate::caps::host_caps`] — everyone else must read
/// the cached capability, not re-probe.
pub(crate) fn probe_quant_ring() -> bool {
    if std::env::var_os("PSML_NO_QUANT").is_some() {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        amx_verified()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
fn amx_verified() -> bool {
    if !amx::has_amx_int8() || !amx::request_permission() {
        return false;
    }
    // Cross-check the tile kernel against the portable model on a probe
    // that exercises padding, multiple K tiles, and a drain.
    let (m, k, n) = (5, 70, 9);
    let a: Vec<u64> = (0..m * k)
        .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5)
        .collect();
    let b: Vec<u64> = (0..k * n)
        .map(|i| (i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03) ^ 0x5A5A)
        .collect();
    let qa = pack_a_planes(m, k, &a);
    let qb = pack_b_planes(k, n, &b);
    let mut amx_out = vec![0u64; m * n];
    let mut ref_out = vec![0u64; m * n];
    gemm_quant_sum_into(
        BackendKind::Amx,
        TILE_K_BYTES,
        m,
        n,
        &[(&qa, &qb)],
        &mut amx_out,
    );
    gemm_quant_sum_into(
        BackendKind::Portable,
        TILE_K_BYTES,
        m,
        n,
        &[(&qa, &qb)],
        &mut ref_out,
    );
    amx_out == ref_out
}

fn assert_ring_carrier<T: Num>() {
    assert!(
        T::WRAPPING_U64,
        "quantized GEMM requires a wrapping u64 ring carrier"
    );
}

/// Packs `b` into [`QuantPackedB`] byte planes for the limb-split kernel.
/// Requires a `WRAPPING_U64` carrier (`u64` / `Fixed64`).
pub fn pack_b_quant<T: Num>(b: &Matrix<T>) -> QuantPackedB {
    assert_ring_carrier::<T>();
    // SAFETY: WRAPPING_U64 = true obliges T to be #[repr(transparent)]
    // over u64 with wrapping ring semantics (unsafe Num contract), so the
    // element slice reinterprets losslessly.
    let b64 = unsafe { cast_slice::<T, u64>(b.as_slice()) };
    pack_b_planes(b.rows(), b.cols(), b64)
}

/// Limb-split quantized ring GEMM. Bit-identical to
/// [`crate::gemm::gemm_packed`] over ring carriers; runs on AMX tiles
/// when available, and on the portable model of the same pipeline
/// otherwise.
pub fn gemm_quant<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let packed = pack_b_quant(b);
    let out = gemm_quant_with(a, &packed);
    pool_put(packed.planes);
    out
}

/// [`gemm_quant`] against a pre-packed right-hand side.
pub fn gemm_quant_with<T: Num>(a: &Matrix<T>, packed: &QuantPackedB) -> Matrix<T> {
    gemm_quant_sum(&[(a, packed)])
}

/// Evaluates `sum_t A_t × B_t` through the limb-split kernel — the
/// quantized twin of [`crate::gemm::gemm_packed_sum`], used for the fused
/// Eq. 8 product. All terms must agree on the output shape.
pub fn gemm_quant_sum<T: Num>(terms: &[(&Matrix<T>, &QuantPackedB)]) -> Matrix<T> {
    assert_ring_carrier::<T>();
    let (m, n) = terms
        .first()
        .map(|(a, qb)| (a.rows(), qb.n))
        .expect("gemm_quant_sum needs at least one term");
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let quant_as: Vec<QuantA> = terms
        .iter()
        .map(|&(a, qb)| {
            assert_eq!(
                a.cols(),
                qb.k,
                "gemm shape mismatch: {:?} x quant-packed {:?}",
                a.shape(),
                (qb.k, qb.n)
            );
            assert_eq!(
                (a.rows(), qb.n),
                (m, n),
                "gemm_quant_sum terms disagree on output shape"
            );
            // SAFETY: WRAPPING_U64 contract as in pack_b_quant.
            pack_a_planes(m, a.cols(), unsafe { cast_slice::<T, u64>(a.as_slice()) })
        })
        .collect();
    let term_refs: Vec<(&QuantA, &QuantPackedB)> = quant_as
        .iter()
        .zip(terms.iter())
        .map(|(qa, &(_, qb))| (qa, qb))
        .collect();
    // SAFETY: WRAPPING_U64 contract; the &mut borrow keeps it unique.
    let out64 = unsafe { cast_slice_mut::<T, u64>(out.as_mut_slice()) };
    gemm_quant_sum_into(best_backend(), DRAIN_BUDGET_KB, m, n, &term_refs, out64);
    drop(term_refs);
    for qa in quant_as {
        pool_put(qa.planes);
    }
    out
}

/// Test-only digit round-trip oracle: recode and recombine.
#[cfg(test)]
pub(crate) fn digits_roundtrip_for_tests(v: u64) -> u64 {
    recombine_digits(&balanced_digits(v))
}

/// Test-only: runs `a x b` through every backend usable on this host with
/// the given drain budget, for cross-backend identity checks.
#[cfg(test)]
pub(crate) fn all_backends_for_tests(
    a: &Matrix<u64>,
    b: &Matrix<u64>,
    budget_kb: usize,
) -> Vec<Matrix<u64>> {
    let mut out = vec![gemm_quant_u64_forced(
        BackendKind::Portable,
        budget_kb,
        a,
        b,
    )];
    #[cfg(target_arch = "x86_64")]
    if quant_ring_available() {
        out.push(gemm_quant_u64_forced(BackendKind::Amx, budget_kb, a, b));
    }
    out
}

/// Test-only entry with an explicit backend and drain budget, so drain
/// schedules (K > budget) are exercised cheaply and both backends can be
/// compared on any host.
#[cfg(test)]
pub(crate) fn gemm_quant_u64_forced(
    kind: BackendKind,
    budget_kb: usize,
    a: &Matrix<u64>,
    b: &Matrix<u64>,
) -> Matrix<u64> {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let qa = pack_a_planes(m, k, a.as_slice());
    let qb = pack_b_planes(k, n, b.as_slice());
    gemm_quant_sum_into(kind, budget_kb, m, n, &[(&qa, &qb)], out.as_mut_slice());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm_naive;

    fn umat(rows: usize, cols: usize, seed: u64) -> Matrix<u64> {
        Matrix::from_fn(rows, cols, |r, c| {
            (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1)
        })
    }

    #[test]
    fn digits_roundtrip_on_corner_values() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            256,
            u64::MAX,
            u64::MAX - 1,
            0x8000_0000_0000_0000,
            0x7FFF_FFFF_FFFF_FFFF,
            0x0100_8040_2010_0804,
            0xFF80_FF80_FF80_FF80,
            0x1234_5678_9ABC_DEF0,
        ] {
            let d = balanced_digits(v);
            assert!(d.iter().all(|&x| (-128..=127).contains(&(x as i16))));
            assert_eq!(recombine_digits(&d), v, "round-trip failed for {v:#x}");
        }
    }

    #[test]
    fn portable_matches_naive_on_edge_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (5, 70, 9), (8, 1, 8), (17, 40, 23), (33, 64, 40)] {
            let a = umat(m, k, 5);
            let b = umat(k, n, 9);
            let got = gemm_quant_u64_forced(BackendKind::Portable, DRAIN_BUDGET_KB, &a, &b);
            assert_eq!(got, gemm_naive(&a, &b), "portable {m}x{k}x{n}");
        }
    }

    #[test]
    fn drain_schedule_is_exact() {
        // K spans several tiles and the budget forces multiple drains in
        // the s < 4 volumes (budget 64 drains after every tile step).
        let (m, k, n) = (4, 200, 6);
        let a = umat(m, k, 3);
        let b = umat(k, n, 7);
        let expect = gemm_naive(&a, &b);
        for budget in [TILE_K_BYTES, 2 * TILE_K_BYTES, DRAIN_BUDGET_KB] {
            let got = gemm_quant_u64_forced(BackendKind::Portable, budget, &a, &b);
            assert_eq!(got, expect, "budget {budget}");
        }
    }

    #[test]
    fn amx_matches_portable_and_reference() {
        if !quant_ring_available() {
            return; // no AMX on this host; portable coverage is above
        }
        for &(m, k, n) in &[(5, 70, 9), (45, 130, 37), (64, 64, 64), (1, 200, 33)] {
            let a = umat(m, k, 11);
            let b = umat(k, n, 13);
            let expect = gemm_naive(&a, &b);
            #[cfg(target_arch = "x86_64")]
            {
                let amx = gemm_quant_u64_forced(BackendKind::Amx, DRAIN_BUDGET_KB, &a, &b);
                assert_eq!(amx, expect, "amx {m}x{k}x{n}");
                let chunked = gemm_quant_u64_forced(BackendKind::Amx, TILE_K_BYTES, &a, &b);
                assert_eq!(chunked, expect, "amx chunked {m}x{k}x{n}");
            }
            assert_eq!(gemm_quant(&a, &b), expect, "dispatched {m}x{k}x{n}");
        }
    }

    #[test]
    fn multi_term_sum_matches_fused_identity() {
        // [L | E] x [F ; B] == L x F + E x B through the quantized path.
        let l = umat(9, 70, 1);
        let e = umat(9, 33, 2);
        let f = umat(70, 11, 3);
        let b = umat(33, 11, 4);
        let fused = gemm_quant_sum(&[(&l, &pack_b_quant(&f)), (&e, &pack_b_quant(&b))]);
        let expect = gemm_naive(&l, &f).add(&gemm_naive(&e, &b));
        assert_eq!(fused, expect);
    }

    #[test]
    fn packed_b_reuse_across_left_operands() {
        let b = umat(40, 19, 3);
        let packed = pack_b_quant(&b);
        for seed in [1, 7, 13] {
            let a = umat(11, 40, seed);
            assert_eq!(gemm_quant_with(&a, &packed), gemm_naive(&a, &b));
        }
    }

    #[test]
    fn empty_dimensions_yield_zeros() {
        let a = Matrix::<u64>::zeros(0, 5);
        let b = umat(5, 3, 1);
        assert_eq!(gemm_quant(&a, &b).shape(), (0, 3));
        let a = Matrix::<u64>::zeros(4, 0);
        let b = Matrix::<u64>::zeros(0, 3);
        assert_eq!(gemm_quant(&a, &b), Matrix::zeros(4, 3));
    }

    #[test]
    fn packed_debug_is_redacted() {
        let qb = pack_b_quant(&umat(4, 4, 9));
        let s = format!("{qb:?}");
        assert!(s.contains("<redacted>"));
        assert!(!s.contains('['), "no plane bytes in Debug output: {s}");
    }

    fn naive_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk] as i32;
                for j in 0..n {
                    out[i * n + j] = out[i * n + j].wrapping_add(av * b[kk * n + j] as i32);
                }
            }
        }
        out
    }

    #[test]
    fn single_plane_i8_matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (5, 70, 9), (17, 40, 23), (33, 64, 40), (32, 128, 32)] {
            let a: Vec<i8> = (0..m * k)
                .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as i8)
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|i| ((i as u64).wrapping_mul(0xD1B5_4A32_D192_ED03) >> 56) as i8)
                .collect();
            assert_eq!(gemm_i8_i32(m, k, n, &a, &b), naive_i8(m, k, n, &a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn single_plane_i8_handles_empty_and_extremes() {
        assert_eq!(gemm_i8_i32(0, 3, 4, &[], &[0; 12]), Vec::<i32>::new());
        assert_eq!(gemm_i8_i32(2, 0, 2, &[], &[]), vec![0; 4]);
        // All-extreme operands still accumulate exactly at moderate k.
        let (m, k, n) = (3, 200, 5);
        let a = vec![-128i8; m * k];
        let b = vec![127i8; k * n];
        assert_eq!(gemm_i8_i32(m, k, n, &a, &b), naive_i8(m, k, n, &a, &b));
    }
}

//! 2-D convolution: direct sliding-window and im2col + GEMM.
//!
//! The paper's CNN workload lowers convolution onto the same triplet
//! multiplication as everything else. We provide the standard *im2col*
//! lowering — unroll each receptive field into a row, so that the
//! convolution of `channels x H x W` input with `filters` `KxK` kernels
//! becomes one `(out_h*out_w) x (channels*K*K)` by `(channels*K*K) x
//! filters` GEMM — plus a direct reference implementation used as oracle.
//! Valid padding, unit stride (the paper's 5x5-kernel CNN).

use crate::gemm::gemm_auto;
use crate::matrix::Matrix;
use crate::num::Num;

/// Shape of a convolution problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Square kernel edge.
    pub kernel: usize,
    /// Number of output filters.
    pub filters: usize,
}

impl ConvShape {
    /// Output height for valid padding, stride 1.
    pub fn out_h(&self) -> usize {
        self.height + 1 - self.kernel
    }

    /// Output width for valid padding, stride 1.
    pub fn out_w(&self) -> usize {
        self.width + 1 - self.kernel
    }

    /// Rows of the im2col matrix (= output pixels).
    pub fn patches(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Columns of the im2col matrix (= receptive field size).
    pub fn patch_len(&self) -> usize {
        self.channels * self.kernel * self.kernel
    }

    /// Validates that the kernel fits in the input.
    pub fn validate(&self) {
        assert!(
            self.kernel >= 1 && self.kernel <= self.height && self.kernel <= self.width,
            "kernel {}x{} does not fit input {}x{}",
            self.kernel,
            self.kernel,
            self.height,
            self.width
        );
        assert!(self.channels >= 1 && self.filters >= 1, "degenerate conv");
    }
}

/// Unrolls `input` (a `channels x (H*W)` matrix, one channel per row) into
/// the im2col patch matrix of shape `patches x patch_len`.
pub fn im2col<T: Num>(input: &Matrix<T>, shape: &ConvShape) -> Matrix<T> {
    shape.validate();
    assert_eq!(
        input.shape(),
        (shape.channels, shape.height * shape.width),
        "input shape mismatch"
    );
    let (oh, ow, k) = (shape.out_h(), shape.out_w(), shape.kernel);
    let mut out = Matrix::zeros(shape.patches(), shape.patch_len());
    for oy in 0..oh {
        for ox in 0..ow {
            let patch_row = oy * ow + ox;
            let dst = out.row_mut(patch_row);
            let mut idx = 0;
            for ch in 0..shape.channels {
                for ky in 0..k {
                    let src_row = (oy + ky) * shape.width + ox;
                    let src = &input.row(ch)[src_row..src_row + k];
                    dst[idx..idx + k].copy_from_slice(src);
                    idx += k;
                }
            }
        }
    }
    out
}

/// Convolution via im2col + GEMM. `kernels` has shape
/// `patch_len x filters` (each column is one flattened filter). Returns a
/// `patches x filters` matrix (one output pixel per row).
pub fn conv2d_im2col<T: Num>(
    input: &Matrix<T>,
    kernels: &Matrix<T>,
    shape: &ConvShape,
) -> Matrix<T> {
    assert_eq!(
        kernels.shape(),
        (shape.patch_len(), shape.filters),
        "kernel shape mismatch"
    );
    let patches = im2col(input, shape);
    // The packed production dispatcher: conv-sized problems (patches x
    // patch_len x filters) routinely clear the packing threshold, where
    // the register-tiled kernel wins (see `cargo bench --bench gemm`).
    gemm_auto(&patches, kernels)
}

/// Direct sliding-window convolution (test oracle).
pub fn conv2d_direct<T: Num>(
    input: &Matrix<T>,
    kernels: &Matrix<T>,
    shape: &ConvShape,
) -> Matrix<T> {
    shape.validate();
    assert_eq!(
        kernels.shape(),
        (shape.patch_len(), shape.filters),
        "kernel shape mismatch"
    );
    let (oh, ow, k) = (shape.out_h(), shape.out_w(), shape.kernel);
    let mut out = Matrix::zeros(shape.patches(), shape.filters);
    for oy in 0..oh {
        for ox in 0..ow {
            let patch_row = oy * ow + ox;
            for f in 0..shape.filters {
                let mut acc = T::zero();
                let mut idx = 0;
                for ch in 0..shape.channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = input[(ch, (oy + ky) * shape.width + (ox + kx))];
                            acc = acc.add(v.mul(kernels[(idx, f)]));
                            idx += 1;
                        }
                    }
                }
                out[(patch_row, f)] = acc;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape {
            channels: 2,
            height: 7,
            width: 6,
            kernel: 3,
            filters: 4,
        }
    }

    fn input(s: &ConvShape) -> Matrix<f32> {
        Matrix::from_fn(s.channels, s.height * s.width, |r, c| {
            ((r * 131 + c * 7) % 23) as f32 - 11.0
        })
    }

    fn kernels(s: &ConvShape) -> Matrix<f32> {
        Matrix::from_fn(s.patch_len(), s.filters, |r, c| {
            ((r * 17 + c * 29) % 13) as f32 - 6.0
        })
    }

    #[test]
    fn shape_arithmetic() {
        let s = shape();
        assert_eq!(s.out_h(), 5);
        assert_eq!(s.out_w(), 4);
        assert_eq!(s.patches(), 20);
        assert_eq!(s.patch_len(), 18);
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        let s = ConvShape {
            channels: 1,
            height: 3,
            width: 3,
            kernel: 2,
            filters: 1,
        };
        let inp = Matrix::from_vec(1, 9, (0..9).map(|x| x as f32).collect());
        let patches = im2col(&inp, &s);
        assert_eq!(patches.shape(), (4, 4));
        // Top-left patch: [0 1; 3 4] flattened row-major.
        assert_eq!(patches.row(0), &[0.0, 1.0, 3.0, 4.0]);
        // Bottom-right patch: [4 5; 7 8].
        assert_eq!(patches.row(3), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_gemm_matches_direct() {
        let s = shape();
        let inp = input(&s);
        let ker = kernels(&s);
        let a = conv2d_direct(&inp, &ker, &s);
        let b = conv2d_im2col(&inp, &ker, &s);
        assert!(a.max_abs_diff(&b) < 1e-3);
    }

    #[test]
    fn multi_channel_contributions_sum() {
        // With an all-ones 1x1 kernel over 2 channels, output = ch0 + ch1.
        let s = ConvShape {
            channels: 2,
            height: 2,
            width: 2,
            kernel: 1,
            filters: 1,
        };
        let inp = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let ker = Matrix::from_vec(2, 1, vec![1.0f32, 1.0]);
        let out = conv2d_im2col(&inp, &ker, &s);
        assert_eq!(out.as_slice(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn kernel_equal_to_input_gives_single_pixel() {
        let s = ConvShape {
            channels: 1,
            height: 4,
            width: 4,
            kernel: 4,
            filters: 2,
        };
        let inp = input(&s);
        let ker = kernels(&s);
        let out = conv2d_im2col(&inp, &ker, &s);
        assert_eq!(out.shape(), (1, 2));
        let oracle = conv2d_direct(&inp, &ker, &s);
        assert!(out.max_abs_diff(&oracle) < 1e-4);
    }

    #[test]
    fn works_in_ring_domain() {
        let s = ConvShape {
            channels: 1,
            height: 5,
            width: 5,
            kernel: 3,
            filters: 2,
        };
        let inp = Matrix::from_fn(1, 25, |_, c| (c as u64).wrapping_mul(0x1234_5678_9ABC_DEF1));
        let ker = Matrix::from_fn(9, 2, |r, c| ((r * 2 + c) as u64).wrapping_mul(7));
        assert_eq!(conv2d_direct(&inp, &ker, &s), conv2d_im2col(&inp, &ker, &s));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_kernel_rejected() {
        let s = ConvShape {
            channels: 1,
            height: 2,
            width: 2,
            kernel: 3,
            filters: 1,
        };
        let inp = Matrix::<f32>::zeros(1, 4);
        let _ = im2col(&inp, &s);
    }
}

//! General matrix multiply kernels.
//!
//! Three implementations with identical results:
//! - [`gemm_naive`]: the textbook triple loop, used as the test oracle;
//! - [`gemm_blocked`]: i-k-j loop order with cache tiling — the CPU
//!   production kernel;
//! - [`gemm_parallel`]: [`gemm_blocked`] parallelized over row bands with
//!   the cache-line-aware chunking of `psml-parallel`.
//!
//! The simulated GPU's GEMM kernel (`psml-gpu`) calls [`gemm_blocked`] for
//! its functional result and charges simulated time from its cost model.

use crate::matrix::Matrix;
use crate::num::Num;
use psml_parallel::for_each_chunk_mut;

/// Cache tile edge (elements). 64 puts a 64x64 f32 tile (16 KiB) well
/// within L1 on common cores.
const BLOCK: usize = 64;

/// Textbook `O(n^3)` triple loop. Test oracle; do not use on hot paths.
pub fn gemm_naive<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::zero();
            for p in 0..k {
                acc = acc.add(a[(i, p)].mul(b[(p, j)]));
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Computes one row band `rows_of_a x b` into `out_band` (row-major,
/// `len = band_rows * n`). Shared by the blocked and parallel kernels.
fn gemm_band<T: Num>(
    a_band: &[T],
    band_rows: usize,
    k: usize,
    b: &Matrix<T>,
    out_band: &mut [T],
) {
    let n = b.cols();
    debug_assert_eq!(a_band.len(), band_rows * k);
    debug_assert_eq!(out_band.len(), band_rows * n);
    for kb in (0..k).step_by(BLOCK) {
        let k_end = (kb + BLOCK).min(k);
        for i in 0..band_rows {
            let a_row = &a_band[i * k..(i + 1) * k];
            let out_row = &mut out_band[i * n..(i + 1) * n];
            #[allow(clippy::needless_range_loop)] // p also selects b.row(p)
            for p in kb..k_end {
                let a_ip = a_row[p];
                if a_ip.is_zero() {
                    continue; // frequent for sparse deltas / activations
                }
                let b_row = b.row(p);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = o.add(a_ip.mul(bv));
                }
            }
        }
    }
}

/// Cache-blocked GEMM, i-k-j order: the inner loop streams one row of `b`
/// and one row of `out`, so all accesses are unit-stride.
pub fn gemm_blocked<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    gemm_band(a.as_slice(), m, k, b, out.as_mut_slice());
    let _ = n;
    out
}

/// Multi-threaded blocked GEMM: the output is split into horizontal bands
/// along cache-line-aligned row boundaries; each worker computes one band.
pub fn gemm_parallel<T: Num>(a: &Matrix<T>, b: &Matrix<T>, workers: usize) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let a_data = a.as_slice();
    // Chunk by rows; alignment 1 row (each row is its own cache-line set
    // because n * T::BYTES >= a line for all practical shapes; for tiny n
    // the band split still never splits a row across workers).
    for_each_chunk_mut(out.as_mut_slice(), workers, n, |offset, band| {
        debug_assert_eq!(offset % n, 0);
        debug_assert_eq!(band.len() % n, 0);
        let row0 = offset / n;
        let band_rows = band.len() / n;
        gemm_band(&a_data[row0 * k..(row0 + band_rows) * k], band_rows, k, b, band);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmat(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u64)
                .wrapping_mul(31)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1);
            ((x % 17) as f32) - 8.0
        })
    }

    fn umat(rows: usize, cols: usize, seed: u64) -> Matrix<u64> {
        Matrix::from_fn(rows, cols, |r, c| {
            (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1)
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = fmat(5, 5, 3);
        let id = Matrix::from_fn(5, 5, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(gemm_blocked(&a, &id), a);
        assert_eq!(gemm_blocked(&id, &a), a);
    }

    #[test]
    fn blocked_matches_naive_f32() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 33, 9), (64, 64, 64), (65, 70, 63)] {
            let a = fmat(m, k, 7);
            let b = fmat(k, n, 11);
            let naive = gemm_naive(&a, &b);
            let blocked = gemm_blocked(&a, &b);
            assert!(
                naive.max_abs_diff(&blocked) < 1e-3,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_ring_exactly() {
        for &(m, k, n) in &[(4, 4, 4), (13, 29, 7), (65, 31, 33)] {
            let a = umat(m, k, 5);
            let b = umat(k, n, 9);
            assert_eq!(gemm_naive(&a, &b), gemm_blocked(&a, &b));
        }
    }

    #[test]
    fn parallel_matches_blocked() {
        for workers in [1, 2, 4, 7] {
            let a = fmat(37, 21, 13);
            let b = fmat(21, 19, 17);
            let expect = gemm_blocked(&a, &b);
            let got = gemm_parallel(&a, &b, workers);
            assert!(expect.max_abs_diff(&got) < 1e-4, "workers={workers}");
        }
    }

    #[test]
    fn parallel_matches_ring_exactly() {
        let a = umat(33, 17, 3);
        let b = umat(17, 29, 19);
        assert_eq!(gemm_parallel(&a, &b, 4), gemm_naive(&a, &b));
    }

    #[test]
    fn skinny_shapes() {
        // Column vector, row vector, outer product.
        let col = fmat(8, 1, 3);
        let row = fmat(1, 8, 5);
        let outer = gemm_blocked(&col, &row);
        assert_eq!(outer.shape(), (8, 8));
        let inner = gemm_blocked(&row, &col);
        assert_eq!(inner.shape(), (1, 1));
        let naive = gemm_naive(&row, &col);
        assert_eq!(inner[(0, 0)], naive[(0, 0)]);
    }

    #[test]
    fn empty_dimension_yields_zeros() {
        let a = Matrix::<f32>::zeros(0, 5);
        let b = Matrix::<f32>::zeros(5, 3);
        assert_eq!(gemm_blocked(&a, &b).shape(), (0, 3));
        assert_eq!(gemm_parallel(&a, &b, 4).shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn mismatched_inner_dims_panic() {
        let _ = gemm_blocked(&fmat(2, 3, 1), &fmat(4, 2, 1));
    }

    #[test]
    fn distributivity_in_ring() {
        // (A + A') x B == AxB + A'xB exactly in Z_2^64 — the algebraic fact
        // the whole secret-sharing protocol rests on.
        let a1 = umat(9, 9, 21);
        let a2 = umat(9, 9, 23);
        let b = umat(9, 9, 25);
        let lhs = gemm_blocked(&a1.add(&a2), &b);
        let rhs = gemm_blocked(&a1, &b).add(&gemm_blocked(&a2, &b));
        assert_eq!(lhs, rhs);
    }
}

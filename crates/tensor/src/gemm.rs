//! General matrix multiply kernels.
//!
//! A hierarchy of implementations with identical results, from oracle to
//! production path:
//!
//! - [`gemm_naive`]: the textbook triple loop, used as the test oracle;
//! - [`gemm_blocked`]: i-k-j loop order with cache tiling and a zero-skip
//!   for sparse operands — the small-matrix kernel;
//! - [`gemm_packed`]: B packed once into contiguous [`PackedB`] column
//!   panels, driven through an unrolled `MR x NR` register-tile
//!   micro-kernel — the large-matrix serial kernel;
//! - [`gemm_packed_parallel`]: [`gemm_packed`] split over output row bands
//!   on the persistent process-global thread pool;
//! - [`gemm_auto`]: the production dispatcher — picks one of the above by
//!   problem size, mirroring the paper's profiling-guided adaptive
//!   placement; large ring products on verified-AMX hosts route to the
//!   limb-split quantized kernel ([`crate::quant`]) instead, with
//!   bit-identical results. `Matrix::matmul`, triple generation, the fused
//!   Eq. 8 evaluation and the gpu-sim functional kernel all route through
//!   it.
//!
//! [`gemm_packed_sum`] evaluates `sum_t A_t x B_t` against pre-packed
//! right-hand sides without materializing concatenations; the fused Eq. 8
//! product `[((-i)E + Ai) | E] x [F ; Bi]` uses it so both servers share one
//! packed `F` panel set.
//!
//! All kernels are exact (bit-identical) over `u64`/`Fixed64`: wrapping ring
//! arithmetic is associative and commutative, so packing and tiling cannot
//! change results. Over `f32` the summation *order* differs between kernels,
//! so results agree only to rounding (~1e-3 relative for the sizes used
//! here).

use crate::matrix::Matrix;
use crate::num::Num;
use crate::quant::{
    gemm_quant, gemm_quant_sum, gemm_quant_with, pack_b_quant, quant_ring_available, QuantPackedB,
};
use psml_parallel::{
    configured_workers, for_each_chunk_mut, for_each_chunk_mut_pooled, global_pool,
};

/// Cache tile edge (elements) for [`gemm_blocked`]. 64 puts a 64x64 f32
/// tile (16 KiB) well within L1 on common cores.
const BLOCK: usize = 64;

/// Register-tile rows of the packed micro-kernel. The full-tile fast
/// path destructures exactly eight named accumulators; a compile error
/// there flags any change here.
pub const MR: usize = 8;

/// Register-tile columns of the packed micro-kernel. With `f32` one tile
/// row is a single 512-bit vector (or two 256-bit ones); with `u64` it is
/// two 512-bit vectors. The `MR x NR` accumulator block stays within the
/// 32 vector registers of AVX-512 for both carriers.
pub const NR: usize = 16;

/// `m * k * n` below which [`gemm_auto`] stays on [`gemm_blocked`]
/// (packing overhead dominates). Calibrated with `cargo bench --bench gemm`
/// (see `BENCH_gemm.json`): the packed kernel wins from roughly 32^3 up.
const AUTO_PACK_FLOPS: usize = 32 * 32 * 32;

/// `m * k * n` above which [`gemm_auto`] moves to the pool-backed
/// [`gemm_packed_parallel`]. Below this the band bookkeeping and
/// latch/wake-up round-trip of a parallel region cost more than they
/// recover: BENCH_gemm.json showed the parallel path 11% *slower* than
/// serial packed at 256^3 (45.5 vs 51.1 GFLOPS), while 512^3 and up
/// amortize it, so the cutover sits between those sizes (~363^3).
const AUTO_PARALLEL_FLOPS: usize = 48_000_000;

/// `m * k * n` above which [`gemm_auto`] routes ring carriers to the
/// limb-split quantized kernel ([`crate::quant`]) when the AMX backend is
/// available. Below this the digit recode + recombine overhead (9 bytes
/// written per element, 8 shifted-add output passes) eats the tile unit's
/// multiplier advantage: measured even (0.95x) at 128^3 and ahead (1.2x)
/// from 160^3 = 4.1M up, so the cutover sits just under that. See
/// DESIGN.md "Quantized ring GEMM".
const AUTO_QUANT_FLOPS: usize = 4_000_000;

fn assert_shapes<T: Num>(a: &Matrix<T>, b: &Matrix<T>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
}

/// Textbook `O(n^3)` triple loop. Test oracle; do not use on hot paths.
pub fn gemm_naive<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_shapes(a, b);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::zero();
            for p in 0..k {
                acc = acc.add(a[(i, p)].mul(b[(p, j)]));
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Computes one row band `rows_of_a x b` into `out_band` (row-major,
/// `len = band_rows * n`). Shared by the blocked and band-parallel kernels.
fn gemm_band<T: Num>(a_band: &[T], band_rows: usize, k: usize, b: &Matrix<T>, out_band: &mut [T]) {
    let n = b.cols();
    debug_assert_eq!(a_band.len(), band_rows * k);
    debug_assert_eq!(out_band.len(), band_rows * n);
    for kb in (0..k).step_by(BLOCK) {
        let k_end = (kb + BLOCK).min(k);
        for i in 0..band_rows {
            let a_row = &a_band[i * k..(i + 1) * k];
            let out_row = &mut out_band[i * n..(i + 1) * n];
            #[allow(clippy::needless_range_loop)] // p also selects b.row(p)
            for p in kb..k_end {
                let a_ip = a_row[p];
                if a_ip.is_zero() {
                    continue; // frequent for sparse deltas / activations
                }
                let b_row = b.row(p);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o = o.add(a_ip.mul(bv));
                }
            }
        }
    }
}

/// Cache-blocked GEMM, i-k-j order: the inner loop streams one row of `b`
/// and one row of `out`, so all accesses are unit-stride. Skips zero `a`
/// entries, which makes it the kernel of choice for sparse operands and for
/// matrices too small to amortize packing.
pub fn gemm_blocked<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_shapes(a, b);
    let (m, _k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    gemm_band(a.as_slice(), m, a.cols(), b, out.as_mut_slice());
    out
}

/// Multi-threaded blocked GEMM: the output is split into horizontal bands
/// along cache-line-aligned row boundaries; each worker computes one band on
/// a freshly spawned scoped thread. Kept for comparison benchmarks; the
/// production parallel path is [`gemm_packed_parallel`], which reuses the
/// global pool instead of spawning.
pub fn gemm_parallel<T: Num>(a: &Matrix<T>, b: &Matrix<T>, workers: usize) -> Matrix<T> {
    assert_shapes(a, b);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let a_data = a.as_slice();
    // Chunk by rows; alignment 1 row (each row is its own cache-line set
    // because n * T::BYTES >= a line for all practical shapes; for tiny n
    // the band split still never splits a row across workers).
    for_each_chunk_mut(out.as_mut_slice(), workers, n, |offset, band| {
        debug_assert_eq!(offset % n, 0);
        debug_assert_eq!(band.len() % n, 0);
        let row0 = offset / n;
        let band_rows = band.len() / n;
        gemm_band(
            &a_data[row0 * k..(row0 + band_rows) * k],
            band_rows,
            k,
            b,
            band,
        );
    });
    out
}

/// `B` repacked into contiguous column panels for the register-tiled
/// kernel.
///
/// Layout: `ceil(n / NR)` panels, each `k * NR` elements. Panel `q` holds
/// columns `q*NR .. q*NR+NR` of `B`, stored row-by-row (`p*NR + jj` maps to
/// `B[p, q*NR + jj]`), zero-padded past column `n`. The micro-kernel then
/// streams each panel linearly once per `MR`-row tile of `A`, so packing is
/// paid once and reused across every row band — and, via
/// [`gemm_packed_sum`], across both servers' fused Eq. 8 evaluations.
#[derive(Clone, Debug)]
pub struct PackedB<T: Num> {
    k: usize,
    n: usize,
    data: Vec<T>,
}

impl<T: Num> PackedB<T> {
    /// Inner dimension (rows of the packed `B`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the packed `B`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the packed panels.
    pub fn byte_size(&self) -> usize {
        self.data.len() * T::BYTES
    }
}

/// One `A` row band paired with its packed right-hand side, flattened to
/// element slices plus scalars.
///
/// The pinned-carrier dispatch in [`packed_band`] reinterprets terms across
/// `#[repr(transparent)]` element types, which is only sound element slice
/// by element slice — `repr(Rust)` gives no layout guarantee between
/// different monomorphizations of a struct like [`PackedB`], so the kernels
/// never see a generic struct through a transmute, only this flat view
/// rebuilt field by field.
#[derive(Clone, Copy)]
struct BandTerm<'a, T> {
    /// Row-major `band_rows x k` slice of `A`.
    a_band: &'a [T],
    /// Inner dimension: stride of `a_band`, rows of the packed panels.
    k: usize,
    /// Packed panel data: `ceil(n / NR)` panels of `k * NR` elements.
    panels: &'a [T],
}

impl<'a, T: Num> BandTerm<'a, T> {
    fn new(a_band: &'a [T], pb: &'a PackedB<T>) -> Self {
        BandTerm {
            a_band,
            k: pb.k,
            panels: &pb.data,
        }
    }

    fn panel(&self, q: usize) -> &'a [T] {
        &self.panels[q * self.k * NR..(q + 1) * self.k * NR]
    }
}

/// Reinterprets an element slice between two carriers.
///
/// # Safety
///
/// `Src` and `Dst` must have identical size, alignment, and validity (true
/// at both call sites: either the types are literally equal, checked by
/// `TypeId`, or `Src` is `#[repr(transparent)]` over `Dst = u64` per the
/// `unsafe` [`Num`] contract behind [`Num::WRAPPING_U64`]).
pub(crate) unsafe fn cast_slice<Src, Dst>(s: &[Src]) -> &[Dst] {
    debug_assert_eq!(std::mem::size_of::<Src>(), std::mem::size_of::<Dst>());
    debug_assert_eq!(std::mem::align_of::<Src>(), std::mem::align_of::<Dst>());
    // SAFETY: caller guarantees Src and Dst agree in size, alignment, and
    // validity (the fn-level contract), so the same element count over the
    // same allocation stays in bounds and every bit pattern is valid.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<Dst>(), s.len()) }
}

/// Mutable [`cast_slice`].
///
/// # Safety
///
/// Same contract as [`cast_slice`]; the `&mut` borrow it consumes keeps
/// the reinterpreted slice unique.
pub(crate) unsafe fn cast_slice_mut<Src, Dst>(s: &mut [Src]) -> &mut [Dst] {
    debug_assert_eq!(std::mem::size_of::<Src>(), std::mem::size_of::<Dst>());
    debug_assert_eq!(std::mem::align_of::<Src>(), std::mem::align_of::<Dst>());
    // SAFETY: as in `cast_slice`, plus exclusivity from the incoming
    // `&mut` borrow whose lifetime the output inherits.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<Dst>(), s.len()) }
}

/// Rebuilds band terms in the `Dst` carrier, element slice by element
/// slice — no struct-level transmute, so `repr(Rust)` layout freedom across
/// monomorphizations cannot bite.
///
/// # Safety
///
/// Same element-compatibility contract as [`cast_slice`].
unsafe fn cast_terms<'a, Src: Num, Dst: Num>(
    terms: &[BandTerm<'a, Src>],
) -> Vec<BandTerm<'a, Dst>> {
    terms
        .iter()
        .map(|t| BandTerm {
            // SAFETY: forwards the fn-level contract; only the element
            // slices are reinterpreted, field by field.
            a_band: unsafe { cast_slice::<Src, Dst>(t.a_band) },
            k: t.k,
            // SAFETY: as above.
            panels: unsafe { cast_slice::<Src, Dst>(t.panels) },
        })
        .collect()
}

/// Packs `b` into [`PackedB`] column panels.
pub fn pack_b<T: Num>(b: &Matrix<T>) -> PackedB<T> {
    let (k, n) = (b.rows(), b.cols());
    let panels = n.div_ceil(NR);
    let mut data = vec![T::zero(); panels * k * NR];
    let src = b.as_slice();
    for q in 0..panels {
        let j0 = q * NR;
        let width = NR.min(n - j0);
        let panel = &mut data[q * k * NR..(q + 1) * k * NR];
        for p in 0..k {
            let row = &src[p * n + j0..p * n + j0 + width];
            panel[p * NR..p * NR + width].copy_from_slice(row);
        }
    }
    PackedB { k, n, data }
}

/// Accumulates `a_tile x b_panel` into the `MR x NR` register tile.
///
/// `a_rows` selects how many of the `MR` accumulator rows are live. The
/// accumulators are scalar locals over const bounds, so LLVM fully unrolls
/// the `NR`-wide inner loop into vector ops (the strided `A` loads become
/// lane broadcasts) for `f32` and `u64` alike. `FMA` selects
/// `Num::mul_add` — only set it from code compiled with hardware fused
/// multiply-add, or the float path falls through to libm.
#[inline(always)]
fn accumulate_tile<T: Num, const FMA: bool>(
    acc: &mut [[T; NR]; MR],
    a_band: &[T],
    stride: usize,
    i_local: usize,
    a_rows: usize,
    k: usize,
    b_panel: &[T],
) {
    if a_rows == MR {
        // Exact-length row slices let LLVM elide the bounds checks on the
        // per-`p` strided loads in the hot full-tile path.
        let rows_a: [&[T]; MR] = std::array::from_fn(|r| {
            let start = (i_local + r) * stride;
            &a_band[start..start + k]
        });
        // Named accumulator locals rather than `acc[r]` indexing: each is
        // a single whole-array value touched only by the unrolled
        // `NR`-wide loop, which is the shape LLVM reliably promotes to
        // vector registers for the whole `p` loop. Array-indexed
        // accumulators were observed to stay stack-resident (one store
        // per FMA) depending on the surrounding codegen unit.
        let [mut c0, mut c1, mut c2, mut c3, mut c4, mut c5, mut c6, mut c7] = *acc;
        macro_rules! row {
            ($cr:ident, $r:literal, $p:ident, $bp:ident) => {
                let av = rows_a[$r][$p];
                for jj in 0..NR {
                    $cr[jj] = if FMA {
                        av.mul_add($bp[jj], $cr[jj])
                    } else {
                        $cr[jj].add(av.mul($bp[jj]))
                    };
                }
            };
        }
        for p in 0..k {
            let bp = &b_panel[p * NR..p * NR + NR];
            row!(c0, 0, p, bp);
            row!(c1, 1, p, bp);
            row!(c2, 2, p, bp);
            row!(c3, 3, p, bp);
            row!(c4, 4, p, bp);
            row!(c5, 5, p, bp);
            row!(c6, 6, p, bp);
            row!(c7, 7, p, bp);
        }
        *acc = [c0, c1, c2, c3, c4, c5, c6, c7];
    } else {
        for p in 0..k {
            let bp = &b_panel[p * NR..p * NR + NR];
            for r in 0..a_rows {
                let av = a_band[(i_local + r) * stride + p];
                for jj in 0..NR {
                    acc[r][jj] = if FMA {
                        av.mul_add(bp[jj], acc[r][jj])
                    } else {
                        acc[r][jj].add(av.mul(bp[jj]))
                    };
                }
            }
        }
    }
}

/// Computes one output row band of `sum_t a_band_t x packed_t` with the
/// register-tiled micro-kernel. Every `a_band_t` covers the same
/// `band_rows` rows (with its own inner dimension `packed_t.k`); `out_band`
/// is `band_rows * n`, zero-initialized by the caller.
///
/// Loop order: row tiles outer, panels inner, so each `MR`-row tile of `A`
/// stays hot in L1 while the packed `B` panels stream from L2.
#[inline(always)]
fn packed_band_impl<T: Num, const FMA: bool>(
    terms: &[BandTerm<T>],
    band_rows: usize,
    n: usize,
    out_band: &mut [T],
) {
    debug_assert!(terms
        .iter()
        .all(|t| t.panels.len() == n.div_ceil(NR) * t.k * NR));
    let panels = n.div_ceil(NR);
    let mut i0 = 0;
    while i0 < band_rows {
        let rows = MR.min(band_rows - i0);
        for q in 0..panels {
            let j0 = q * NR;
            let width = NR.min(n - j0);
            let mut acc = [[T::zero(); NR]; MR];
            for t in terms {
                accumulate_tile::<T, FMA>(&mut acc, t.a_band, t.k, i0, rows, t.k, t.panel(q));
            }
            for r in 0..rows {
                let out_row = &mut out_band[(i0 + r) * n + j0..(i0 + r) * n + j0 + width];
                out_row.copy_from_slice(&acc[r][..width]);
            }
        }
        i0 += rows;
    }
}

/// AVX-512 instantiation of the band kernel: 512-bit lanes plus hardware
/// FMA (`avx512dq` supplies the 64-bit lane multiply the ring carrier
/// needs).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512bw,avx512vl,fma")]
fn packed_band_avx512<T: Num>(
    terms: &[BandTerm<T>],
    band_rows: usize,
    n: usize,
    out_band: &mut [T],
) {
    packed_band_impl::<T, true>(terms, band_rows, n, out_band);
}

/// AVX2 + FMA instantiation of the band kernel (256-bit lanes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
fn packed_band_avx2<T: Num>(terms: &[BandTerm<T>], band_rows: usize, n: usize, out_band: &mut [T]) {
    packed_band_impl::<T, true>(terms, band_rows, n, out_band);
}

/// Band kernel entry point: dispatches once per call on the CPU features
/// detected at runtime, so release builds need no `target-cpu` flags to
/// reach the wide-vector paths.
fn packed_band_dispatch<T: Num>(
    terms: &[BandTerm<T>],
    band_rows: usize,
    n: usize,
    out_band: &mut [T],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: all enabled features were just detected on this CPU.
            return unsafe { packed_band_avx512(terms, band_rows, n, out_band) };
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: avx2 and fma were just detected on this CPU.
            return unsafe { packed_band_avx2(terms, band_rows, n, out_band) };
        }
    }
    packed_band_impl::<T, false>(terms, band_rows, n, out_band);
}

/// Monomorphic pinned copy of the f32 kernel. Generic monomorphizations
/// are re-emitted by every downstream crate, and their optimization
/// quality varies with that crate's codegen-unit layout — binaries were
/// observed running the same source at half speed. Routing the two hot
/// carriers through concrete functions compiled *here* gives every
/// binary the same vetted codegen.
#[inline(never)]
fn packed_band_f32(terms: &[BandTerm<f32>], band_rows: usize, n: usize, out_band: &mut [f32]) {
    packed_band_dispatch(terms, band_rows, n, out_band);
}

/// Monomorphic pinned copy of the `Z_{2^64}` kernel; see
/// [`packed_band_f32`].
#[inline(never)]
fn packed_band_u64(terms: &[BandTerm<u64>], band_rows: usize, n: usize, out_band: &mut [u64]) {
    packed_band_dispatch(terms, band_rows, n, out_band);
}

fn packed_band<T: Num>(terms: &[BandTerm<T>], band_rows: usize, n: usize, out_band: &mut [T]) {
    use std::any::TypeId;
    let t = TypeId::of::<T>();
    if t == TypeId::of::<f32>() {
        // SAFETY: T is exactly f32 (checked above); only element slices of
        // that very type are rebranded, term by term.
        let (terms, out_band) = unsafe {
            (
                cast_terms::<T, f32>(terms),
                cast_slice_mut::<T, f32>(out_band),
            )
        };
        return packed_band_f32(&terms, band_rows, n, out_band);
    }
    if T::WRAPPING_U64 {
        // SAFETY: implementing `Num` is unsafe, and `WRAPPING_U64 = true`
        // obliges the implementor to be `#[repr(transparent)]` over `u64`
        // with exactly the wrapping ring operations (u64 itself and the mpc
        // crate's Fixed64), so the u64 kernel computes the same function.
        // Only element slices are reinterpreted — the `BandTerm`s are
        // rebuilt field by field, never transmuted as structs.
        let (terms, out_band) = unsafe {
            (
                cast_terms::<T, u64>(terms),
                cast_slice_mut::<T, u64>(out_band),
            )
        };
        return packed_band_u64(&terms, band_rows, n, out_band);
    }
    packed_band_dispatch(terms, band_rows, n, out_band);
}

/// Serial register-tiled GEMM against a pre-packed `B`. Use when the same
/// `B` multiplies several left-hand sides (e.g. the shared public `F` of
/// Eq. 8).
pub fn gemm_packed_with<T: Num>(a: &Matrix<T>, packed: &PackedB<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        packed.k,
        "gemm shape mismatch: {:?} x packed {:?}",
        a.shape(),
        (packed.k, packed.n)
    );
    let (m, n) = (a.rows(), packed.n);
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    packed_band(
        &[BandTerm::new(a.as_slice(), packed)],
        m,
        n,
        out.as_mut_slice(),
    );
    out
}

/// Serial register-tiled GEMM: packs `B`, then runs the micro-kernel.
pub fn gemm_packed<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_shapes(a, b);
    gemm_packed_with(a, &pack_b(b))
}

/// Register-tiled GEMM over output row bands on the process-global thread
/// pool — the large-matrix production kernel. `B` is packed once; all bands
/// (and all pool workers) read the same panels.
pub fn gemm_packed_parallel<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_shapes(a, b);
    gemm_packed_sum(&[(a, &pack_b(b))])
}

/// Evaluates `sum_t A_t x B_t` against pre-packed right-hand sides, without
/// materializing any concatenation. All terms must agree on output shape.
///
/// This is the fused Eq. 8 workhorse: `[L | E] x [F ; Bi]` is exactly
/// `L x F + E x Bi`, so the caller passes `[(L, packed_f), (E, packed_bi)]`
/// and the shared `packed_f` is reused by both servers. Falls back to the
/// serial band for small outputs; larger ones run on the global pool.
pub fn gemm_packed_sum<T: Num>(terms: &[(&Matrix<T>, &PackedB<T>)]) -> Matrix<T> {
    let (m, n) = terms
        .first()
        .map(|(a, pb)| (a.rows(), pb.n))
        .expect("gemm_packed_sum needs at least one term");
    let mut flops = 0usize;
    for (a, pb) in terms {
        assert_eq!(
            a.cols(),
            pb.k,
            "gemm shape mismatch: {:?} x packed {:?}",
            a.shape(),
            (pb.k, pb.n)
        );
        assert_eq!(
            (a.rows(), pb.n),
            (m, n),
            "gemm_packed_sum terms disagree on output shape"
        );
        flops = flops.saturating_add(m.saturating_mul(pb.k).saturating_mul(n));
    }
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return out;
    }
    let bands: Vec<BandTerm<T>> = terms
        .iter()
        .map(|&(a, pb)| BandTerm::new(a.as_slice(), pb))
        .collect();
    if flops < AUTO_PARALLEL_FLOPS || configured_workers() < 2 {
        packed_band(&bands, m, n, out.as_mut_slice());
        return out;
    }
    for_each_chunk_mut_pooled(out.as_mut_slice(), n, |offset, out_band| {
        debug_assert_eq!(offset % n, 0);
        debug_assert_eq!(out_band.len() % n, 0);
        let row0 = offset / n;
        let band_rows = out_band.len() / n;
        let band_terms: Vec<BandTerm<T>> = bands
            .iter()
            .map(|t| BandTerm {
                a_band: &t.a_band[row0 * t.k..(row0 + band_rows) * t.k],
                ..*t
            })
            .collect();
        packed_band(&band_terms, band_rows, n, out_band);
    });
    out
}

/// A right-hand side packed for whichever kernel the auto dispatcher
/// selected when it was created: element-typed column panels for the
/// register-tiled kernel, or byte planes for the limb-split quantized
/// ring kernel.
///
/// Produced by [`pack_b_auto`] and consumed by [`gemm_packed_sum_auto`];
/// secondary operands of a fused sum must be packed with
/// [`AutoPackedB::pack_matching`] so every term lands on the same kernel.
#[derive(Clone, Debug)]
pub enum AutoPackedB<T: Num> {
    /// Column panels for the register-tiled micro-kernel.
    Std(PackedB<T>),
    /// Byte planes for the quantized ring kernel.
    Quant(QuantPackedB),
}

impl<T: Num> AutoPackedB<T> {
    /// Inner dimension (rows of the packed `B`).
    pub fn k(&self) -> usize {
        match self {
            AutoPackedB::Std(p) => p.k(),
            AutoPackedB::Quant(q) => q.k(),
        }
    }

    /// Columns of the packed `B`.
    pub fn n(&self) -> usize {
        match self {
            AutoPackedB::Std(p) => p.n(),
            AutoPackedB::Quant(q) => q.n(),
        }
    }

    /// Bytes held by the packed representation.
    pub fn byte_size(&self) -> usize {
        match self {
            AutoPackedB::Std(p) => p.byte_size(),
            AutoPackedB::Quant(q) => q.byte_size(),
        }
    }

    /// Packs another right-hand side in this pack's representation, so it
    /// can join the same [`gemm_packed_sum_auto`] call (the fused Eq. 8
    /// product packs the shared `F` first, then each server's `B_i` to
    /// match).
    pub fn pack_matching(&self, b: &Matrix<T>) -> AutoPackedB<T> {
        match self {
            AutoPackedB::Std(_) => AutoPackedB::Std(pack_b(b)),
            AutoPackedB::Quant(_) => AutoPackedB::Quant(pack_b_quant(b)),
        }
    }
}

/// Packs `b` for the kernel [`gemm_auto`] would pick for an
/// `m_hint x b.rows() x b.cols()` product: quantized byte planes when the
/// limb-split path applies ([`quant_applies`]), element column panels
/// otherwise. `m_hint` is the row count of the left-hand side(s) the pack
/// will multiply.
pub fn pack_b_auto<T: Num>(b: &Matrix<T>, m_hint: usize) -> AutoPackedB<T> {
    if quant_applies::<T>(m_hint, b.rows(), b.cols()) {
        AutoPackedB::Quant(pack_b_quant(b))
    } else {
        AutoPackedB::Std(pack_b(b))
    }
}

/// [`gemm_packed_sum`] over auto-packed right-hand sides: dispatches the
/// whole sum to the kernel the packs were built for. All terms must carry
/// the same [`AutoPackedB`] variant (use [`AutoPackedB::pack_matching`]);
/// results are bit-identical across variants for ring carriers.
pub fn gemm_packed_sum_auto<T: Num>(terms: &[(&Matrix<T>, &AutoPackedB<T>)]) -> Matrix<T> {
    let all_std = terms.iter().all(|(_, p)| matches!(p, AutoPackedB::Std(_)));
    let all_quant = terms
        .iter()
        .all(|(_, p)| matches!(p, AutoPackedB::Quant(_)));
    if all_std {
        let std_terms: Vec<(&Matrix<T>, &PackedB<T>)> = terms
            .iter()
            .map(|&(a, p)| match p {
                AutoPackedB::Std(pb) => (a, pb),
                AutoPackedB::Quant(_) => unreachable!(),
            })
            .collect();
        gemm_packed_sum(&std_terms)
    } else if all_quant {
        let quant_terms: Vec<(&Matrix<T>, &QuantPackedB)> = terms
            .iter()
            .map(|&(a, p)| match p {
                AutoPackedB::Quant(qb) => (a, qb),
                AutoPackedB::Std(_) => unreachable!(),
            })
            .collect();
        gemm_quant_sum(&quant_terms)
    } else {
        panic!("gemm_packed_sum_auto terms mix packed representations; use pack_matching");
    }
}

/// True when [`gemm_auto`] would route an `m x k x n` product in carrier
/// `T` through the limb-split quantized kernel: ring carrier, product
/// large enough to amortize recode/recombine, a single configured worker
/// (with 2+ workers the pool path keeps every multiplier busy while the
/// tile driver is serial), and the AMX backend verified on this host.
pub(crate) fn quant_applies<T: Num>(m: usize, k: usize, n: usize) -> bool {
    let flops = m.saturating_mul(k).saturating_mul(n);
    T::WRAPPING_U64
        && flops >= AUTO_QUANT_FLOPS
        && configured_workers() < 2
        && quant_ring_available()
}

/// The production GEMM: dispatches on problem size, mirroring the paper's
/// profiling-guided adaptive placement.
///
/// - tiny products (`m*k*n < `[`AUTO_PACK_FLOPS`]): [`gemm_blocked`] —
///   packing cannot be amortized and the zero-skip helps sparse operands;
/// - large ring products on AMX hosts ([`quant_applies`]):
///   [`gemm_quant`] — the limb-split quantized kernel on the tile unit,
///   bit-identical to the packed ring kernel;
/// - medium: [`gemm_packed`] — serial register-tiled kernel;
/// - large (`m*k*n >= `[`AUTO_PARALLEL_FLOPS`] with more than one
///   configured worker): [`gemm_packed_parallel`] on the persistent pool.
pub fn gemm_auto<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_shapes(a, b);
    match auto_tier::<T>(a.rows(), a.cols(), b.cols()) {
        AutoTier::Blocked => gemm_blocked(a, b),
        AutoTier::Quant => gemm_quant(a, b),
        AutoTier::Packed => gemm_packed(a, b),
        AutoTier::Parallel => gemm_packed_parallel(a, b),
    }
}

/// Dispatch tier [`gemm_auto`] would pick for an `m x k x n` product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AutoTier {
    Blocked,
    Quant,
    Packed,
    Parallel,
}

fn auto_tier<T: Num>(m: usize, k: usize, n: usize) -> AutoTier {
    let flops = m.saturating_mul(k).saturating_mul(n);
    if flops < AUTO_PACK_FLOPS {
        AutoTier::Blocked
    } else if quant_applies::<T>(m, k, n) {
        AutoTier::Quant
    } else if flops < AUTO_PARALLEL_FLOPS || configured_workers() < 2 {
        AutoTier::Packed
    } else {
        AutoTier::Parallel
    }
}

/// Evaluates a batch of *independent* products, each with the exact kernel
/// [`gemm_auto`] would pick for it, amortizing pool dispatch across the
/// batch: all serial-tier items (blocked / serial-packed) are submitted to
/// the process-global pool as one region and run concurrently, while
/// parallel-tier items run one after another, each owning the whole pool.
///
/// Results are bit-identical to calling [`gemm_auto`] per pair — the same
/// kernel functions execute on the same operands; only *where* they run
/// changes. When every pair shares the same right-hand side (pointer
/// equality), `B` is packed once and reused by all packed-tier items.
///
/// This is the triple-provisioning batch path: `b` pending same-shape
/// triples become `b` concurrent `Z = U x V` products. Stacking them into
/// one `(b*m, k) x (k, n)` GEMM — the more obvious fusion — would be
/// wrong for independent triples, since each has its own `V`; see
/// DESIGN.md ("Offline/online overlap on the host").
pub fn gemm_batch<T: Num>(pairs: &[(&Matrix<T>, &Matrix<T>)]) -> Vec<Matrix<T>> {
    for (a, b) in pairs {
        assert_shapes(a, b);
    }
    let tiers: Vec<AutoTier> = pairs
        .iter()
        .map(|&(a, b)| auto_tier::<T>(a.rows(), a.cols(), b.cols()))
        .collect();
    let shares_rhs = |tier: AutoTier| {
        pairs.len() > 1
            && tiers.contains(&tier)
            && pairs.iter().all(|&(_, b)| std::ptr::eq(b, pairs[0].1))
    };
    // Pack a shared right-hand side once (only worth it when some item is
    // in the packed/quant tier and the B really is the same allocation).
    let shared_packed: Option<PackedB<T>> = if shares_rhs(AutoTier::Packed) {
        Some(pack_b(pairs[0].1))
    } else {
        None
    };
    let shared_quant: Option<QuantPackedB> = if shares_rhs(AutoTier::Quant) {
        Some(pack_b_quant(pairs[0].1))
    } else {
        None
    };
    let run_serial = |i: usize, slot: &mut Option<Matrix<T>>| {
        let (a, b) = pairs[i];
        *slot = Some(match tiers[i] {
            AutoTier::Blocked => gemm_blocked(a, b),
            AutoTier::Quant => match &shared_quant {
                Some(q) => gemm_quant_with(a, q),
                None => gemm_quant(a, b),
            },
            AutoTier::Packed => match &shared_packed {
                Some(p) => gemm_packed_with(a, p),
                None => gemm_packed(a, b),
            },
            AutoTier::Parallel => unreachable!("parallel items run below"),
        });
    };
    let mut results: Vec<Option<Matrix<T>>> = pairs.iter().map(|_| None).collect();
    let serial_items = tiers.iter().filter(|&&t| t != AutoTier::Parallel).count();
    if serial_items > 1 && configured_workers() >= 2 {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = results
            .iter_mut()
            .enumerate()
            .filter(|&(i, _)| tiers[i] != AutoTier::Parallel)
            .map(|(i, slot)| {
                let run_serial = &run_serial;
                Box::new(move || run_serial(i, slot)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        global_pool().scoped_run(jobs);
    } else {
        for (i, slot) in results.iter_mut().enumerate() {
            if tiers[i] != AutoTier::Parallel {
                run_serial(i, slot);
            }
        }
    }
    for (i, slot) in results.iter_mut().enumerate() {
        if tiers[i] == AutoTier::Parallel {
            let (a, b) = pairs[i];
            *slot = Some(gemm_packed_parallel(a, b));
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every batch item computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmat(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u64)
                .wrapping_mul(31)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1);
            ((x % 17) as f32) - 8.0
        })
    }

    fn umat(rows: usize, cols: usize, seed: u64) -> Matrix<u64> {
        Matrix::from_fn(rows, cols, |r, c| {
            (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1)
        })
    }

    #[test]
    fn identity_is_neutral() {
        let a = fmat(5, 5, 3);
        let id = Matrix::from_fn(5, 5, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(gemm_blocked(&a, &id), a);
        assert_eq!(gemm_blocked(&id, &a), a);
    }

    #[test]
    fn blocked_matches_naive_f32() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (17, 33, 9),
            (64, 64, 64),
            (65, 70, 63),
        ] {
            let a = fmat(m, k, 7);
            let b = fmat(k, n, 11);
            let naive = gemm_naive(&a, &b);
            let blocked = gemm_blocked(&a, &b);
            assert!(
                naive.max_abs_diff(&blocked) < 1e-3,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_matches_naive_ring_exactly() {
        for &(m, k, n) in &[(4, 4, 4), (13, 29, 7), (65, 31, 33)] {
            let a = umat(m, k, 5);
            let b = umat(k, n, 9);
            assert_eq!(gemm_naive(&a, &b), gemm_blocked(&a, &b));
        }
    }

    #[test]
    fn parallel_matches_blocked() {
        for workers in [1, 2, 4, 7] {
            let a = fmat(37, 21, 13);
            let b = fmat(21, 19, 17);
            let expect = gemm_blocked(&a, &b);
            let got = gemm_parallel(&a, &b, workers);
            assert!(expect.max_abs_diff(&got) < 1e-4, "workers={workers}");
        }
    }

    #[test]
    fn parallel_matches_ring_exactly() {
        let a = umat(33, 17, 3);
        let b = umat(17, 29, 19);
        assert_eq!(gemm_parallel(&a, &b, 4), gemm_naive(&a, &b));
    }

    #[test]
    fn packed_matches_naive_ring_exactly_on_edge_shapes() {
        // 1x1x1, MR/NR non-divisible shapes, skinny row/col vectors, and
        // shapes around the tile edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR - 1, 3, NR - 1),
            (MR + 1, 5, NR + 1),
            (2 * MR + 3, 17, 3 * NR + 5),
            (1, 64, 1),
            (1, 7, 33),
            (33, 7, 1),
            (64, 1, 64),
            (13, 29, 7),
            (65, 31, 33),
        ] {
            let a = umat(m, k, 5);
            let b = umat(k, n, 9);
            let expect = gemm_naive(&a, &b);
            assert_eq!(gemm_packed(&a, &b), expect, "packed {m}x{k}x{n}");
            assert_eq!(
                gemm_packed_parallel(&a, &b),
                expect,
                "packed-parallel {m}x{k}x{n}"
            );
            assert_eq!(gemm_auto(&a, &b), expect, "auto {m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_matches_naive_f32() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (17, 33, 9),
            (64, 64, 64),
            (65, 70, 63),
        ] {
            let a = fmat(m, k, 7);
            let b = fmat(k, n, 11);
            let naive = gemm_naive(&a, &b);
            assert!(
                naive.max_abs_diff(&gemm_packed(&a, &b)) < 1e-3,
                "packed mismatch at {m}x{k}x{n}"
            );
            assert!(
                naive.max_abs_diff(&gemm_auto(&a, &b)) < 1e-3,
                "auto mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn packed_empty_dimensions_yield_zeros() {
        let a = Matrix::<u64>::zeros(0, 5);
        let b = Matrix::<u64>::zeros(5, 3);
        assert_eq!(gemm_packed(&a, &b).shape(), (0, 3));
        assert_eq!(gemm_auto(&a, &b).shape(), (0, 3));
        let a = Matrix::<u64>::zeros(4, 0);
        let b = Matrix::<u64>::zeros(0, 3);
        assert_eq!(gemm_packed(&a, &b), Matrix::zeros(4, 3));
        let a = Matrix::<u64>::zeros(4, 5);
        let b = Matrix::<u64>::zeros(5, 0);
        assert_eq!(gemm_packed(&a, &b).shape(), (4, 0));
    }

    #[test]
    fn packed_b_reuse_across_left_operands() {
        let b = umat(23, 19, 3);
        let packed = pack_b(&b);
        for seed in [1, 7, 13] {
            let a = umat(11, 23, seed);
            assert_eq!(gemm_packed_with(&a, &packed), gemm_naive(&a, &b));
        }
    }

    #[test]
    fn packed_sum_equals_concatenated_product() {
        // [L | E] x [F ; B] == L x F + E x B — the fused Eq. 8 identity the
        // protocol relies on, evaluated without materializing either concat.
        let l = umat(9, 6, 1);
        let e = umat(9, 4, 2);
        let f = umat(6, 11, 3);
        let b = umat(4, 11, 4);
        let fused = gemm_packed_sum(&[(&l, &pack_b(&f)), (&e, &pack_b(&b))]);
        let expect = gemm_naive(&l, &f).add(&gemm_naive(&e, &b));
        assert_eq!(fused, expect);
        let concat = gemm_naive(&l.hconcat(&e), &f.vconcat(&b));
        assert_eq!(fused, concat);
    }

    #[test]
    fn auto_dispatch_covers_all_tiers() {
        // One shape per dispatch tier; all must agree with the oracle.
        for &(m, k, n) in &[(8, 8, 8), (48, 48, 48), (160, 160, 160)] {
            let a = umat(m, k, 3);
            let b = umat(k, n, 7);
            assert_eq!(gemm_auto(&a, &b), gemm_naive(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn skinny_shapes() {
        // Column vector, row vector, outer product.
        let col = fmat(8, 1, 3);
        let row = fmat(1, 8, 5);
        let outer = gemm_blocked(&col, &row);
        assert_eq!(outer.shape(), (8, 8));
        let inner = gemm_blocked(&row, &col);
        assert_eq!(inner.shape(), (1, 1));
        let naive = gemm_naive(&row, &col);
        assert_eq!(inner[(0, 0)], naive[(0, 0)]);
    }

    #[test]
    fn empty_dimension_yields_zeros() {
        let a = Matrix::<f32>::zeros(0, 5);
        let b = Matrix::<f32>::zeros(5, 3);
        assert_eq!(gemm_blocked(&a, &b).shape(), (0, 3));
        assert_eq!(gemm_parallel(&a, &b, 4).shape(), (0, 3));
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn mismatched_inner_dims_panic() {
        let _ = gemm_blocked(&fmat(2, 3, 1), &fmat(4, 2, 1));
    }

    #[test]
    #[should_panic(expected = "gemm shape mismatch")]
    fn packed_mismatched_inner_dims_panic() {
        let _ = gemm_packed(&fmat(2, 3, 1), &fmat(4, 2, 1));
    }

    #[test]
    fn batch_matches_auto_exactly_in_ring() {
        // Items spread over all three dispatch tiers.
        let shapes = [
            (8, 8, 8),
            (48, 48, 48),
            (160, 160, 160),
            (3, 5, 2),
            (40, 33, 50),
        ];
        let mats: Vec<(Matrix<u64>, Matrix<u64>)> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, k, n))| (umat(m, k, i as u64 + 1), umat(k, n, i as u64 + 11)))
            .collect();
        let pairs: Vec<(&Matrix<u64>, &Matrix<u64>)> = mats.iter().map(|(a, b)| (a, b)).collect();
        let batched = gemm_batch(&pairs);
        for ((a, b), got) in mats.iter().zip(&batched) {
            assert_eq!(got, &gemm_auto(a, b));
        }
    }

    #[test]
    fn batch_matches_auto_bitwise_f32() {
        // f32 summation order is kernel-dependent, so bit-identity here
        // proves the batch really runs the same kernels as gemm_auto.
        let mats: Vec<(Matrix<f32>, Matrix<f32>)> = [(8, 8, 8), (48, 48, 48), (33, 70, 41)]
            .iter()
            .enumerate()
            .map(|(i, &(m, k, n))| (fmat(m, k, i as u64 + 1), fmat(k, n, i as u64 + 7)))
            .collect();
        let pairs: Vec<(&Matrix<f32>, &Matrix<f32>)> = mats.iter().map(|(a, b)| (a, b)).collect();
        for (got, (a, b)) in gemm_batch(&pairs).iter().zip(&mats) {
            assert_eq!(got.as_slice(), gemm_auto(a, b).as_slice());
        }
    }

    #[test]
    fn batch_shared_rhs_packs_once_and_matches() {
        let b = umat(48, 48, 3);
        let lhs: Vec<Matrix<u64>> = (0..4).map(|i| umat(48, 48, i + 21)).collect();
        let pairs: Vec<(&Matrix<u64>, &Matrix<u64>)> = lhs.iter().map(|a| (a, &b)).collect();
        for (got, a) in gemm_batch(&pairs).iter().zip(&lhs) {
            assert_eq!(got, &gemm_auto(a, &b));
        }
    }

    #[test]
    fn batch_of_empty_and_one() {
        assert!(gemm_batch::<u64>(&[]).is_empty());
        let a = umat(5, 6, 1);
        let b = umat(6, 4, 2);
        assert_eq!(gemm_batch(&[(&a, &b)]), vec![gemm_auto(&a, &b)]);
    }

    #[test]
    fn packed_sum_auto_matches_for_both_variants() {
        // The fused Eq. 8 sum through explicit Std and Quant packs must
        // agree bit-for-bit with each other and the oracle.
        let l = umat(9, 40, 1);
        let e = umat(9, 33, 2);
        let f = umat(40, 11, 3);
        let b = umat(33, 11, 4);
        let expect = gemm_naive(&l, &f).add(&gemm_naive(&e, &b));
        let f_std: AutoPackedB<u64> = AutoPackedB::Std(pack_b(&f));
        let b_std = f_std.pack_matching(&b);
        assert_eq!(gemm_packed_sum_auto(&[(&l, &f_std), (&e, &b_std)]), expect);
        let f_q: AutoPackedB<u64> = AutoPackedB::Quant(pack_b_quant(&f));
        let b_q = f_q.pack_matching(&b);
        assert_eq!(gemm_packed_sum_auto(&[(&l, &f_q), (&e, &b_q)]), expect);
        assert_eq!((f_q.k(), f_q.n()), (40, 11));
        assert!(f_q.byte_size() > 0);
    }

    #[test]
    #[should_panic(expected = "mix packed representations")]
    fn packed_sum_auto_rejects_mixed_variants() {
        let l = umat(4, 4, 1);
        let f = umat(4, 4, 2);
        let std: AutoPackedB<u64> = AutoPackedB::Std(pack_b(&f));
        let quant: AutoPackedB<u64> = AutoPackedB::Quant(pack_b_quant(&f));
        let _ = gemm_packed_sum_auto(&[(&l, &std), (&l, &quant)]);
    }

    #[test]
    fn pack_b_auto_respects_carrier_and_size() {
        // Small products and float carriers always take the Std pack; the
        // Quant pack appears only for large ring products on verified-AMX
        // single-worker hosts, which is exactly quant_applies.
        let small = umat(8, 8, 1);
        assert!(matches!(pack_b_auto(&small, 8), AutoPackedB::Std(_)));
        let fb = fmat(64, 400, 1);
        assert!(matches!(pack_b_auto(&fb, 4000), AutoPackedB::Std(_)));
        let big = umat(400, 400, 1);
        let expect_quant = quant_applies::<u64>(1000, 400, 400);
        assert_eq!(
            matches!(pack_b_auto(&big, 1000), AutoPackedB::Quant(_)),
            expect_quant
        );
    }

    #[test]
    fn distributivity_in_ring() {
        // (A + A') x B == AxB + A'xB exactly in Z_2^64 — the algebraic fact
        // the whole secret-sharing protocol rests on.
        let a1 = umat(9, 9, 21);
        let a2 = umat(9, 9, 23);
        let b = umat(9, 9, 25);
        let lhs = gemm_blocked(&a1.add(&a2), &b);
        let rhs = gemm_blocked(&a1, &b).add(&gemm_blocked(&a2, &b));
        assert_eq!(lhs, rhs);
    }
}

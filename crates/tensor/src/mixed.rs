//! Real mixed-precision host GEMM paths.
//!
//! The simulated device defines its Tensor-Core GEMM as "round both
//! operands through binary16, accumulate in f32" — the numerics of
//! `cublasSgemmEx` under `CUBLAS_TENSOR_OP_MATH`. This module *executes*
//! that contract on host silicon:
//!
//! - [`gemm_f16`]: rounds operands through f16 on the F16C conversion
//!   unit (`vcvtps2ph`/`vcvtph2ps`, 8 lanes per instruction) when the
//!   host has one, then runs the packed f32 GEMM. The hardware
//!   conversion is round-to-nearest-even, the same function as the
//!   scalar emulation in [`crate::half`] — bit-identical by test across
//!   every finite f16 pattern and the rounding corner cases — so results
//!   cannot depend on which unit did the rounding.
//! - [`gemm_int8_scaled`]: symmetric per-matrix int8 quantization over
//!   the AMX tile pipeline ([`crate::quant::gemm_i8_i32`]) with an f32
//!   dequantize. Approximate (unlike every ring path in this crate) but
//!   fast; the error bound is documented on the function.

use crate::caps::host_caps;
use crate::gemm::gemm_auto;
use crate::half::quantize_f16;
use crate::matrix::Matrix;
use crate::quant::gemm_i8_i32;

/// Rounds every element through binary16 (RNE), using the F16C unit when
/// the host has one and the scalar emulation otherwise. Both produce the
/// identical bit pattern for every input, so callers never observe which
/// path ran.
pub fn quantize_f16_slice(s: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if host_caps().f16c {
        // SAFETY: the f16c feature was detected by the process-wide
        // capability probe.
        unsafe { quantize_f16_slice_f16c(s) };
        return;
    }
    for x in s.iter_mut() {
        *x = quantize_f16(*x);
    }
}

/// F16C vector path: `vcvtps2ph` with round-to-nearest-even, then
/// `vcvtph2ps` back — exactly [`quantize_f16`] per lane.
///
/// # Safety
///
/// The CPU must support the `f16c` feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "f16c")]
unsafe fn quantize_f16_slice_f16c(s: &mut [f32]) {
    use std::arch::x86_64::{
        _mm256_cvtph_ps, _mm256_cvtps_ph, _mm256_loadu_ps, _mm256_storeu_ps,
        _MM_FROUND_TO_NEAREST_INT,
    };
    let mut i = 0;
    while i + 8 <= s.len() {
        // SAFETY: i + 8 <= len, so the unaligned load/store stay in
        // bounds; f16c is enabled on this fn by contract.
        unsafe {
            let v = _mm256_loadu_ps(s.as_ptr().add(i));
            let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
            _mm256_storeu_ps(s.as_mut_ptr().add(i), _mm256_cvtph_ps(h));
        }
        i += 8;
    }
    for x in &mut s[i..] {
        *x = quantize_f16(*x);
    }
}

/// Rounds a matrix through binary16 (see [`quantize_f16_slice`]).
pub fn quantize_f16_matrix(a: &Matrix<f32>) -> Matrix<f32> {
    let mut out = a.clone();
    quantize_f16_slice(out.as_mut_slice());
    out
}

/// The Tensor-Core GEMM contract on host silicon: operands rounded
/// through binary16 (F16C where available), f32 accumulation via the
/// packed GEMM hierarchy. Bit-identical to the simulated kernel
/// `psml_gpu::kernels::gemm(…, TensorCore)` — both compute
/// `gemm_auto(quantize(a), quantize(b))` with the same rounding.
pub fn gemm_f16(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    let aq = quantize_f16_matrix(a);
    let bq = quantize_f16_matrix(b);
    gemm_auto(&aq, &bq)
}

/// Symmetric scale for int8 quantization: maps `[-max, max]` onto
/// `[-127, 127]`. `None` when the operand has no finite nonzero value to
/// calibrate on.
fn int8_scale(s: &[f32]) -> Option<f32> {
    let max = s.iter().fold(0.0f32, |m, &v| if v.abs() > m { v.abs() } else { m });
    (max.is_finite() && max > 0.0).then_some(127.0 / max)
}

/// Approximate f32 GEMM over the int8 tile pipeline: each operand is
/// quantized symmetrically (`q = round(v · 127 / max|v|)`), multiplied
/// exactly in i8×i8→i32 on AMX (portable model otherwise), and the i32
/// sums dequantized back to f32.
///
/// **Error bound:** quantization perturbs each element by at most half a
/// step, `|δ| ≤ max/254`, so each output entry differs from the exact
/// product by at most `k · maxA · maxB · (1/254 + 1/254 + 1/254²) <
/// k · maxA · maxB / 126` — linear in the inner dimension, like the f16
/// path's bound but with 8-bit instead of 11-bit significands. The i32
/// accumulation itself is exact for `k ≤ 2^17` (see
/// [`crate::quant::gemm_i8_i32`]); beyond that this function falls back
/// to [`gemm_auto`]. Degenerate calibrations (all-zero or non-finite
/// operands) also fall back, so the function is total.
pub fn gemm_int8_scaled(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "gemm shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 {
        return Matrix::zeros(m, n);
    }
    let (Some(sa), Some(sb)) = (int8_scale(a.as_slice()), int8_scale(b.as_slice())) else {
        return gemm_auto(a, b);
    };
    if k > 1 << 17 {
        return gemm_auto(a, b);
    }
    let qa: Vec<i8> = a.as_slice().iter().map(|&v| (v * sa).round() as i8).collect();
    let qb: Vec<i8> = b.as_slice().iter().map(|&v| (v * sb).round() as i8).collect();
    let acc = gemm_i8_i32(m, k, n, &qa, &qb);
    let inv = 1.0 / (sa * sb);
    Matrix::from_fn(m, n, |r, c| acc[r * n + c] as f32 * inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmat(rows: usize, cols: usize, seed: u32) -> Matrix<f32> {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(c as u32)
                .wrapping_mul(seed | 1);
            (x >> 8) as f32 / (1u32 << 23) as f32 * 2.0 - 1.0
        })
    }

    #[test]
    fn f16c_path_is_bit_identical_to_scalar_emulation() {
        // Every finite f16 pattern, expanded to f32, plus rounding corner
        // cases that are *not* f16-representable.
        let mut vals: Vec<f32> = (0u16..=0xFFFF)
            .filter(|h| (h >> 10) & 0x1F != 0x1F)
            .map(crate::half::f16_bits_to_f32)
            .collect();
        vals.extend([
            1.0 + 2.0f32.powi(-11), // RNE tie
            1.0 + 3.0 * 2.0f32.powi(-11),
            70000.0,  // overflow to inf
            -70000.0,
            1e-10,    // underflow to zero
            -1e-10,
            2.0f32.powi(-25), // subnormal tie
            f32::MAX,
            f32::MIN_POSITIVE,
        ]);
        let mut hw = vals.clone();
        quantize_f16_slice(&mut hw);
        for (orig, got) in vals.iter().zip(&hw) {
            let want = quantize_f16(*orig);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "f16 rounding diverged on {orig} ({:#x})",
                orig.to_bits()
            );
        }
    }

    #[test]
    fn gemm_f16_matches_quantize_then_auto() {
        let a = fmat(23, 37, 5);
        let b = fmat(37, 19, 9);
        let expect = gemm_auto(&a.map(quantize_f16), &b.map(quantize_f16));
        assert_eq!(gemm_f16(&a, &b), expect);
    }

    #[test]
    fn int8_error_is_within_documented_bound() {
        for &(m, k, n) in &[(16, 64, 16), (33, 100, 17), (64, 256, 64)] {
            let a = fmat(m, k, 3);
            let b = fmat(k, n, 7);
            let exact = gemm_auto(&a, &b);
            let approx = gemm_int8_scaled(&a, &b);
            let max_a = a.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let max_b = b.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let bound = k as f32 * max_a * max_b / 126.0;
            let err = exact.max_abs_diff(&approx);
            assert!(err <= bound, "{m}x{k}x{n}: err {err} > bound {bound}");
            assert!(err > 0.0 || exact == approx);
        }
    }

    #[test]
    fn int8_degenerate_inputs_fall_back_exactly() {
        let z = Matrix::<f32>::zeros(4, 6);
        let b = fmat(6, 3, 1);
        assert_eq!(gemm_int8_scaled(&z, &b), gemm_auto(&z, &b));
        let inf = Matrix::from_fn(4, 6, |_, _| f32::INFINITY);
        let ones = Matrix::from_fn(6, 3, |_, _| 1.0f32);
        // Non-finite calibration falls back to the exact path (all-+inf
        // times all-ones is +inf everywhere, comparable by Eq).
        assert_eq!(gemm_int8_scaled(&inf, &ones), gemm_auto(&inf, &ones));
        assert_eq!(gemm_int8_scaled(&z, &Matrix::zeros(6, 0)).shape(), (4, 0));
    }
}

//! Compressed Sparse Row storage and the density test driving the paper's
//! compressed transmission (Section 4.4).
//!
//! Before a server ships `E_i`/`F_i` deltas to its peer, it checks whether
//! the delta is sparse ("75 percent elements in the matrix are zero in our
//! default settings"); if so it transmits CSR instead of the dense matrix.

use crate::matrix::Matrix;
use crate::num::Num;

/// The paper's default sparsity threshold: compress when >= 75 % zeros.
pub const DEFAULT_SPARSITY_THRESHOLD: f64 = 0.75;

/// Fraction of zero elements in a dense buffer.
pub fn density_of_zeros<T: Num>(data: &[T]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    data.iter().filter(|x| x.is_zero()).count() as f64 / data.len() as f64
}

/// A Compressed Sparse Row matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    rows: usize,
    cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes this row's entries. Length `rows+1`.
    row_ptr: Vec<u32>,
    /// Column index of each stored entry.
    col_idx: Vec<u32>,
    /// Stored values, row-major by construction.
    values: Vec<T>,
}

impl<T: Num> Csr<T> {
    /// Compresses a dense matrix, keeping only non-zero entries.
    ///
    /// # Panics
    /// Panics if the matrix has more than `u32::MAX` columns or non-zeros
    /// (the wire format uses 32-bit indices, as cuSPARSE does).
    pub fn from_dense(m: &Matrix<T>) -> Self {
        assert!(m.cols() <= u32::MAX as usize, "too many columns for CSR");
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if !v.is_zero() {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            assert!(values.len() <= u32::MAX as usize, "too many non-zeros");
            row_ptr.push(values.len() as u32);
        }
        Csr {
            rows: m.rows(),
            cols: m.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Expands back to a dense matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let row = out.row_mut(r);
            for e in lo..hi {
                row[self.col_idx[e] as usize] = self.values[e];
            }
        }
        out
    }

    /// Adds this sparse matrix into `dense` in place (the receive-side of
    /// delta transmission: `E_{j+1} = E_j + delta`).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_into(&self, dense: &mut Matrix<T>) {
        assert_eq!(dense.shape(), (self.rows, self.cols), "shape mismatch");
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let row = dense.row_mut(r);
            for e in lo..hi {
                let c = self.col_idx[e] as usize;
                row[c] = row[c].add(self.values[e]);
            }
        }
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(rows, cols)` of the logical dense matrix.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Size of the CSR wire representation in bytes:
    /// `row_ptr` + `col_idx` (4 B each) + values.
    pub fn byte_size(&self) -> usize {
        (self.row_ptr.len() + self.col_idx.len()) * 4 + self.values.len() * T::BYTES
    }

    /// Whether shipping this matrix as CSR is smaller than dense.
    pub fn wins_over_dense(&self) -> bool {
        self.byte_size() < self.rows * self.cols * T::BYTES
    }

    /// Accessors for the raw arrays (wire encoding).
    pub fn raw_parts(&self) -> (&[u32], &[u32], &[T]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Rebuilds a CSR matrix from raw arrays (wire decoding).
    ///
    /// # Panics
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "bad row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/value length mismatch");
        assert_eq!(
            *row_ptr.last().unwrap_or(&0) as usize,
            values.len(),
            "row_ptr does not terminate at nnz"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr not monotone"
        );
        assert!(
            col_idx.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// Decision + payload for one transmission: dense or compressed, whichever
/// the Sec. 4.4 policy selects.
#[derive(Clone, Debug)]
pub enum MaybeCompressed<T: Num> {
    /// Matrix shipped dense (not sparse enough).
    Dense(Matrix<T>),
    /// Matrix shipped as CSR.
    Sparse(Csr<T>),
}

impl<T: Num> MaybeCompressed<T> {
    /// Applies the paper's policy: CSR when the zero fraction reaches
    /// `threshold` (default 0.75) *and* CSR is actually smaller.
    pub fn choose(m: Matrix<T>, threshold: f64) -> Self {
        if m.zero_fraction() >= threshold {
            let csr = Csr::from_dense(&m);
            if csr.wins_over_dense() {
                return MaybeCompressed::Sparse(csr);
            }
        }
        MaybeCompressed::Dense(m)
    }

    /// Bytes this payload occupies on the wire.
    pub fn byte_size(&self) -> usize {
        match self {
            MaybeCompressed::Dense(m) => m.byte_size(),
            MaybeCompressed::Sparse(c) => c.byte_size(),
        }
    }

    /// Recovers the dense matrix.
    pub fn into_dense(self) -> Matrix<T> {
        match self {
            MaybeCompressed::Dense(m) => m,
            MaybeCompressed::Sparse(c) => c.to_dense(),
        }
    }

    /// Whether the compressed representation was chosen.
    pub fn is_compressed(&self) -> bool {
        matches!(self, MaybeCompressed::Sparse(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_matrix() -> Matrix<f32> {
        Matrix::from_fn(10, 10, |r, c| {
            if (r * 10 + c) % 5 == 0 {
                (r + c) as f32 + 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let m = sparse_matrix();
        let csr = Csr::from_dense(&m);
        assert_eq!(csr.nnz(), 20);
        assert_eq!(csr.to_dense(), m);
    }

    #[test]
    fn empty_and_full_extremes() {
        let zero = Matrix::<f32>::zeros(4, 4);
        let csr = Csr::from_dense(&zero);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.to_dense(), zero);

        let full = Matrix::from_fn(4, 4, |r, c| (r * 4 + c + 1) as f32);
        let csr = Csr::from_dense(&full);
        assert_eq!(csr.nnz(), 16);
        assert!(!csr.wins_over_dense());
        assert_eq!(csr.to_dense(), full);
    }

    #[test]
    fn byte_size_accounts_for_indices() {
        let m = sparse_matrix();
        let csr = Csr::from_dense(&m);
        // 11 row ptrs + 20 col idx @4B + 20 values @4B.
        assert_eq!(csr.byte_size(), (11 + 20) * 4 + 20 * 4);
        assert!(csr.wins_over_dense());
    }

    #[test]
    fn add_into_applies_delta() {
        let base = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        let mut delta = Matrix::<f32>::zeros(3, 3);
        delta[(1, 1)] = 5.0;
        delta[(2, 0)] = -2.0;
        let csr = Csr::from_dense(&delta);
        let mut out = base.clone();
        csr.add_into(&mut out);
        assert_eq!(out, base.add(&delta));
    }

    #[test]
    fn policy_compresses_only_when_sparse_enough() {
        let sparse = sparse_matrix(); // 80 % zeros
        assert!(MaybeCompressed::choose(sparse, DEFAULT_SPARSITY_THRESHOLD).is_compressed());
        let dense = Matrix::from_fn(10, 10, |r, c| (r + c + 1) as f32);
        assert!(!MaybeCompressed::choose(dense, DEFAULT_SPARSITY_THRESHOLD).is_compressed());
    }

    #[test]
    fn policy_never_grows_payload() {
        // A matrix that is 75 % zeros but so small that CSR indices outweigh
        // the dense form must stay dense.
        let mut tiny = Matrix::<f32>::zeros(1, 4);
        tiny[(0, 0)] = 1.0;
        let choice = MaybeCompressed::choose(tiny.clone(), 0.5);
        assert!(choice.byte_size() <= tiny.byte_size());
    }

    #[test]
    fn density_of_zeros_handles_empty() {
        assert_eq!(density_of_zeros::<f32>(&[]), 1.0);
        assert_eq!(density_of_zeros(&[0.0f32, 1.0]), 0.5);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let m = sparse_matrix();
        let csr = Csr::from_dense(&m);
        let (rp, ci, v) = csr.raw_parts();
        let rebuilt = Csr::from_raw_parts(10, 10, rp.to_vec(), ci.to_vec(), v.to_vec());
        assert_eq!(rebuilt, csr);
    }

    #[test]
    #[should_panic(expected = "row_ptr not monotone")]
    fn malformed_row_ptr_rejected() {
        let _ = Csr::<f32>::from_raw_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn out_of_range_column_rejected() {
        let _ = Csr::<f32>::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}

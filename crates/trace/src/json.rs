//! A tiny serde-free JSON layer: an ordered value model, a writer, and a
//! strict recursive-descent parser.
//!
//! The build environment is offline (no crates.io), so the versioned report
//! serializers (`RunReport::to_json` and friends) and the CLI's
//! `psml validate` schema check share this ~250-line implementation instead
//! of `serde_json`. Objects preserve insertion order (a `Vec` of pairs),
//! which keeps emitted documents byte-stable across runs.

use std::fmt;

/// A JSON document value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integral number (counters, byte totals, nanoseconds).
    UInt(u64),
    /// Signed integral number.
    Int(i64),
    /// Floating number (simulated seconds, fractions). Non-finite values
    /// serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64 (accepting any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::UInt(u) => Some(u as f64),
            JsonValue::Int(i) => Some(i as f64),
            JsonValue::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a u64 (accepting non-negative integral variants).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(u) => Some(u),
            JsonValue::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Object(_))
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_string()
    }
}

/// Builder shorthand: `obj([("k", v), ...])`.
pub fn obj<I: IntoIterator<Item = (&'static str, JsonValue)>>(pairs: I) -> JsonValue {
    JsonValue::Object(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(u) => write!(f, "{u}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Float(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                // `{}` on f64 prints the shortest string that round-trips,
                // which is deterministic — but omits the ".0" on integral
                // values, so re-add it to keep the token a JSON float.
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Error from [`parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(
                                &self.bytes[self.pos + 1..self.pos + 5],
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our schemas;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // boundary arithmetic is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(JsonValue::UInt(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(JsonValue::Int(i))
        } else {
            text.parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = obj([
            ("schema", JsonValue::Str("psml.test.v1".into())),
            ("count", JsonValue::UInt(3)),
            ("ratio", JsonValue::Float(0.5)),
            ("neg", JsonValue::Int(-7)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "items",
                JsonValue::Array(vec![JsonValue::UInt(1), JsonValue::Str("a\"b".into())]),
            ),
        ]);
        let text = v.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn integral_float_keeps_float_token() {
        let text = JsonValue::Float(2.0).to_json();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), JsonValue::Float(2.0));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = JsonValue::Str("tab\there \u{1F600} / quote\"".into());
        let back = parse(&v.to_json()).unwrap();
        assert_eq!(back, v);
        let parsed = parse(r#""A\n""#).unwrap();
        assert_eq!(parsed, JsonValue::Str("A\n".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn ordered_keys_stable() {
        let v = obj([("b", JsonValue::UInt(1)), ("a", JsonValue::UInt(2))]);
        assert_eq!(v.to_json(), r#"{"b":1,"a":2}"#);
    }
}

//! The typed span event recorded by every instrumented layer.

/// Protocol phase a span belongs to (the paper's secure-multiplication
/// pipeline stages, plus the offline triplet-generation phase).
///
/// The engine establishes the current phase with [`crate::TraceSink::scope`];
/// lower layers (GPU kernels, network sends) inherit it ambiently, which is
/// what lets the summary attribute device and wire activity to protocol
/// phases without plumbing a phase argument through every API.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Phase {
    /// Offline triplet generation and share distribution.
    Offline,
    /// First online local product (`D x F` masking side).
    Compute1,
    /// Inter-server exchange of masked shares.
    Communicate,
    /// Second online local product (the Eq. (8) reconstruction GEMM).
    Compute2,
    /// Secure activation evaluation (client-aided or GC-modelled).
    Activation,
    /// Anything recorded outside an engine phase scope.
    #[default]
    Other,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Offline,
        Phase::Compute1,
        Phase::Communicate,
        Phase::Compute2,
        Phase::Activation,
        Phase::Other,
    ];

    /// Stable lowercase name, used as the Chrome-trace category and in the
    /// JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Offline => "offline",
            Phase::Compute1 => "compute1",
            Phase::Communicate => "communicate",
            Phase::Compute2 => "compute2",
            Phase::Activation => "activation",
            Phase::Other => "other",
        }
    }
}

/// One completed span: something that occupied a simulated resource from
/// `start_ns` to `end_ns`.
///
/// Times are simulated time in integer nanoseconds (this crate sits below
/// `psml-simtime`, so `SimTime` cannot appear here — see [`ns_of_secs`]).
/// `wall_ns` is real wall-clock nanoseconds since the first recorded event
/// of the process; it is informational only and excluded from deterministic
/// exports.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Protocol phase (ambient at record time).
    pub phase: Phase,
    /// Operation kind, e.g. `"gemm"`, `"h2d:E"`, `"send"`.
    pub op: String,
    /// Lane the span ran on, e.g. `"server0.gpu:compute"`, `"net:S0->S1"`.
    pub track: String,
    /// Model layer index (ambient at record time), if inside one.
    pub layer: Option<u32>,
    /// GEMM-style shape `(m, k, n)` if the op has one.
    pub shape: Option<[u32; 3]>,
    /// `"cpu"` / `"gpu"` placement decision if the op was placed adaptively.
    pub placement: Option<&'static str>,
    /// Simulated start, nanoseconds.
    pub start_ns: u64,
    /// Simulated end, nanoseconds.
    pub end_ns: u64,
    /// Wall-clock nanoseconds since process trace epoch (non-deterministic).
    pub wall_ns: u64,
    /// Bytes moved by the op (transfers, sends), 0 for pure compute.
    pub bytes: u64,
}

impl TraceEvent {
    /// Simulated duration of the span, nanoseconds.
    #[inline]
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Converts simulated seconds (the `SimTime`/`SimDuration` representation)
/// to integer nanoseconds, rounding to nearest. Saturates at zero for
/// negative inputs.
#[inline]
pub fn ns_of_secs(secs: f64) -> u64 {
    if secs <= 0.0 || !secs.is_finite() {
        0
    } else {
        (secs * 1e9).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_rounds_and_saturates() {
        assert_eq!(ns_of_secs(1.0), 1_000_000_000);
        assert_eq!(ns_of_secs(1.5e-9), 2);
        assert_eq!(ns_of_secs(-3.0), 0);
        assert_eq!(ns_of_secs(f64::NAN), 0);
    }

    #[test]
    fn phase_names_are_stable() {
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
        }
        assert_eq!(Phase::Compute2.name(), "compute2");
    }

    #[test]
    fn dur_saturates() {
        let ev = TraceEvent {
            phase: Phase::Other,
            op: "x".into(),
            track: "t".into(),
            layer: None,
            shape: None,
            placement: None,
            start_ns: 10,
            end_ns: 4,
            wall_ns: 0,
            bytes: 0,
        };
        assert_eq!(ev.dur_ns(), 0);
    }
}

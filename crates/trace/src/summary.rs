//! Flamegraph-style per-phase / per-layer text summary of a trace.

use std::fmt::Write as _;

use crate::event::{Phase, TraceEvent};

/// Aggregated view of a trace: busy time per phase, per layer, and per
/// (phase, op) pair.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// `(phase, busy ns, events, bytes)` in pipeline order; phases with no
    /// events are omitted.
    pub phases: Vec<(Phase, u64, usize, u64)>,
    /// `(layer, busy ns, events)` sorted by layer index.
    pub layers: Vec<(u32, u64, usize)>,
    /// `(phase, op, busy ns, events)` sorted by descending time within
    /// each phase.
    pub ops: Vec<(Phase, String, u64, usize)>,
    /// Total busy nanoseconds across all events.
    pub total_ns: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
}

impl Summary {
    /// Builds the aggregate from raw events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = Summary::default();
        for ev in events {
            let dur = ev.dur_ns();
            s.total_ns += dur;
            s.total_bytes += ev.bytes;
            match s.phases.iter_mut().find(|(p, ..)| *p == ev.phase) {
                Some((_, ns, n, bytes)) => {
                    *ns += dur;
                    *n += 1;
                    *bytes += ev.bytes;
                }
                None => s.phases.push((ev.phase, dur, 1, ev.bytes)),
            }
            if let Some(layer) = ev.layer {
                match s.layers.iter_mut().find(|(l, ..)| *l == layer) {
                    Some((_, ns, n)) => {
                        *ns += dur;
                        *n += 1;
                    }
                    None => s.layers.push((layer, dur, 1)),
                }
            }
            match s
                .ops
                .iter_mut()
                .find(|(p, op, ..)| *p == ev.phase && *op == ev.op)
            {
                Some((_, _, ns, n)) => {
                    *ns += dur;
                    *n += 1;
                }
                None => s.ops.push((ev.phase, ev.op.clone(), dur, 1)),
            }
        }
        s.phases
            .sort_by_key(|&(p, ..)| Phase::ALL.iter().position(|q| *q == p));
        s.layers.sort_by_key(|&(l, ..)| l);
        s.ops.sort_by(|a, b| {
            let pa = Phase::ALL.iter().position(|q| *q == a.0);
            let pb = Phase::ALL.iter().position(|q| *q == b.0);
            pa.cmp(&pb)
                .then(b.2.cmp(&a.2))
                .then(a.1.cmp(&b.1))
        });
        s
    }

    /// Renders the flamegraph-style text report: a bar per phase with its
    /// top ops indented beneath, followed by a per-layer table.
    pub fn render(&self) -> String {
        const BAR: usize = 28;
        const TOP_OPS: usize = 5;
        let mut out = String::new();
        let total = self.total_ns.max(1);
        let _ = writeln!(
            out,
            "trace summary: {} busy across {} phases, {} moved",
            fmt_ns(self.total_ns),
            self.phases.len(),
            fmt_bytes(self.total_bytes),
        );
        for &(phase, ns, n, bytes) in &self.phases {
            let frac = ns as f64 / total as f64;
            let filled = ((frac * BAR as f64).round() as usize).min(BAR);
            let _ = writeln!(
                out,
                "  {:<12} [{:<width$}] {:>10}  {:>5.1}%  {:>6} events  {}",
                phase.name(),
                "#".repeat(filled),
                fmt_ns(ns),
                100.0 * frac,
                n,
                fmt_bytes(bytes),
                width = BAR,
            );
            let mut shown = 0;
            for (p, op, op_ns, op_n) in &self.ops {
                if *p != phase || shown >= TOP_OPS {
                    continue;
                }
                shown += 1;
                let _ = writeln!(
                    out,
                    "      {:<24} {:>10}  x{}",
                    op,
                    fmt_ns(*op_ns),
                    op_n
                );
            }
        }
        if !self.layers.is_empty() {
            let _ = writeln!(out, "  per-layer:");
            for &(layer, ns, n) in &self.layers {
                let _ = writeln!(
                    out,
                    "      layer {:<3} {:>10}  {:>6} events",
                    layer,
                    fmt_ns(ns),
                    n
                );
            }
        }
        out
    }

    /// Busy nanoseconds attributed to `phase`.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|(p, ..)| *p == phase)
            .map(|&(_, ns, ..)| ns)
            .unwrap_or(0)
    }
}

/// Human-readable nanosecond count with adaptive units.
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable byte count.
fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let bf = b as f64;
    if bf >= KIB * KIB * KIB {
        format!("{:.2}GiB", bf / (KIB * KIB * KIB))
    } else if bf >= KIB * KIB {
        format!("{:.2}MiB", bf / (KIB * KIB))
    } else if bf >= KIB {
        format!("{:.2}KiB", bf / KIB)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(phase: Phase, op: &str, layer: Option<u32>, start: u64, end: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            phase,
            op: op.into(),
            track: "t".into(),
            layer,
            shape: None,
            placement: None,
            start_ns: start,
            end_ns: end,
            wall_ns: 0,
            bytes,
        }
    }

    #[test]
    fn aggregates_by_phase_layer_and_op() {
        let events = vec![
            ev(Phase::Compute1, "gemm", Some(0), 0, 100, 0),
            ev(Phase::Compute1, "gemm", Some(0), 100, 250, 0),
            ev(Phase::Communicate, "send", Some(0), 250, 400, 64),
            ev(Phase::Compute2, "gemm", Some(1), 400, 900, 0),
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.total_ns, 100 + 150 + 150 + 500);
        assert_eq!(s.total_bytes, 64);
        assert_eq!(s.phase_ns(Phase::Compute1), 250);
        assert_eq!(s.phase_ns(Phase::Offline), 0);
        assert_eq!(s.layers, vec![(0, 400, 3), (1, 500, 1)]);
        // Phases come out in pipeline order.
        let order: Vec<Phase> = s.phases.iter().map(|&(p, ..)| p).collect();
        assert_eq!(
            order,
            vec![Phase::Compute1, Phase::Communicate, Phase::Compute2]
        );
        let text = s.render();
        assert!(text.contains("compute1"));
        assert!(text.contains("per-layer:"));
        assert!(text.contains("layer 0"));
    }

    #[test]
    fn render_empty_trace() {
        let s = Summary::from_events(&[]);
        let text = s.render();
        assert!(text.contains("0 phases"));
    }
}

#![forbid(unsafe_code)]
//! # psml-trace
//!
//! Zero-cost-when-disabled structured tracing for ParSecureML-rs.
//!
//! Every layer of the stack — the simulated-time substrate
//! (`psml-simtime`), the network simulator (`psml-net`), the GPU device
//! model (`psml-gpu`) and the secure engine (`parsecureml`) — records
//! typed span events into a per-thread buffer through [`TraceSink`]. When
//! tracing is disabled (the default) the record path is a single relaxed
//! atomic load, so protocol hot paths and benchmarks pay nothing.
//!
//! This crate deliberately has **zero dependencies** (it sits below
//! `psml-simtime` in the crate graph), so simulated times cross the
//! boundary as integer nanoseconds — see [`ns_of_secs`].
//!
//! On top of the sink:
//! - [`chrome_trace_json`] exports a `chrome://tracing` / Perfetto
//!   compatible JSON trace,
//! - [`Summary`] renders a flamegraph-style per-phase / per-layer text
//!   breakdown,
//! - [`json`] is a tiny serde-free JSON value model (writer + parser)
//!   shared by the versioned report serializers and the CLI's schema
//!   validation.
//!
//! ```
//! use psml_trace::{Phase, TraceSink};
//!
//! TraceSink::enable();
//! {
//!     let _scope = TraceSink::scope(Phase::Compute2, Some(0));
//!     TraceSink::span("gemm", "server0.gpu", 0, 1_000, 4096);
//! }
//! let events = TraceSink::drain();
//! TraceSink::disable();
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].phase, Phase::Compute2);
//! ```

mod chrome;
mod event;
pub mod json;
mod sink;
mod summary;

pub use chrome::{chrome_trace_json, chrome_trace_json_with, ChromeTraceOptions};
pub use event::{ns_of_secs, Phase, TraceEvent};
pub use sink::{PhaseGuard, TraceSink};
pub use summary::Summary;

//! The global trace sink: a per-thread event buffer behind one atomic flag.
//!
//! Design constraints, in order:
//! 1. **Zero cost when disabled.** [`TraceSink::record`] and
//!    [`TraceSink::span`] start with a single `Relaxed` atomic load and
//!    return immediately when tracing is off — no allocation, no TLS
//!    access, no lock.
//! 2. **Lock-free recording when enabled.** Events land in a plain
//!    `thread_local!` `Vec`; there is no shared registry and therefore no
//!    contention. The engine (and everything it drives: GPU timelines,
//!    network endpoints) runs on one thread, so draining the calling
//!    thread's buffer captures the whole run. Worker-pool threads never
//!    record.
//! 3. **Deterministic output.** Events drain in insertion order, which is
//!    deterministic for a fixed seed; wall-clock time is carried alongside
//!    but never used for ordering.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::event::{Phase, TraceEvent};

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static BUFFER: RefCell<Vec<TraceEvent>> = const { RefCell::new(Vec::new()) };
    static CONTEXT: Cell<(Phase, Option<u32>)> = const { Cell::new((Phase::Other, None)) };
}

/// Handle to the process-wide trace sink. All methods are associated
/// functions; the type exists so the facade can re-export one name.
#[derive(Clone, Copy, Debug)]
pub struct TraceSink;

impl TraceSink {
    /// Turns tracing on for the whole process.
    pub fn enable() {
        EPOCH.get_or_init(Instant::now);
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Turns tracing off. Buffered events are kept until drained.
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Whether tracing is currently on. This is the only check on the
    /// disabled hot path.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Discards the calling thread's buffered events.
    pub fn clear() {
        BUFFER.with(|b| b.borrow_mut().clear());
    }

    /// Takes and returns the calling thread's buffered events, in
    /// insertion order.
    pub fn drain() -> Vec<TraceEvent> {
        BUFFER.with(|b| std::mem::take(&mut *b.borrow_mut()))
    }

    /// Records a fully-formed event. Phase/layer are filled from the
    /// ambient scope when the event carries none.
    #[inline]
    pub fn record(mut ev: TraceEvent) {
        if !Self::is_enabled() {
            return;
        }
        let (phase, layer) = CONTEXT.with(Cell::get);
        if ev.phase == Phase::Other {
            ev.phase = phase;
        }
        if ev.layer.is_none() {
            ev.layer = layer;
        }
        ev.wall_ns = Self::wall_ns();
        BUFFER.with(|b| b.borrow_mut().push(ev));
    }

    /// Records a simple span with ambient phase/layer. The common entry
    /// point for lower layers (timeline ops, network sends).
    #[inline]
    pub fn span(op: &str, track: &str, start_ns: u64, end_ns: u64, bytes: u64) {
        if !Self::is_enabled() {
            return;
        }
        Self::record(TraceEvent {
            phase: Phase::Other,
            op: op.to_string(),
            track: track.to_string(),
            layer: None,
            shape: None,
            placement: None,
            start_ns,
            end_ns,
            wall_ns: 0,
            bytes,
        });
    }

    /// Appends already-formed events to the calling thread's buffer,
    /// preserving their `wall_ns` stamps.
    ///
    /// This is the hand-over half of cross-thread tracing: a producer
    /// thread (the triple-provisioning pipeline) drains its own buffer
    /// and ships the events with its results; the engine thread adopts
    /// them at consumption time. Unlike [`TraceSink::record`], the wall
    /// clock is *not* re-stamped — the events describe when the work
    /// actually ran, which is exactly what makes offline/online overlap
    /// visible in the profile.
    pub fn adopt(events: Vec<TraceEvent>) {
        if !Self::is_enabled() || events.is_empty() {
            return;
        }
        BUFFER.with(|b| b.borrow_mut().extend(events));
    }

    /// Establishes the ambient `(phase, layer)` for the calling thread
    /// until the returned guard drops. Scopes nest; the previous context
    /// is restored on drop.
    #[must_use]
    pub fn scope(phase: Phase, layer: Option<u32>) -> PhaseGuard {
        let prev = CONTEXT.with(|c| c.replace((phase, layer)));
        PhaseGuard { prev }
    }

    /// The ambient `(phase, layer)` of the calling thread.
    pub fn current() -> (Phase, Option<u32>) {
        CONTEXT.with(Cell::get)
    }

    /// Wall-clock nanoseconds since the first [`TraceSink::enable`] of the
    /// process. Returns 0 before the epoch is set.
    pub fn wall_ns() -> u64 {
        EPOCH
            .get()
            .map(|e| {
                let n = e.elapsed().as_nanos();
                u64::try_from(n).unwrap_or(u64::MAX)
            })
            .unwrap_or(0)
    }
}

/// RAII guard restoring the previous ambient phase/layer. Created by
/// [`TraceSink::scope`].
#[derive(Debug)]
pub struct PhaseGuard {
    prev: (Phase, Option<u32>),
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The buffer is thread-local so each test only observes its own
    // events, but the ENABLED flag is process-global: tests that toggle it
    // serialize on this lock so a concurrent test never sees the flag
    // flipped under it.
    static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _l = FLAG_LOCK.lock().unwrap();
        TraceSink::disable();
        TraceSink::clear();
        TraceSink::span("gemm", "gpu", 0, 10, 0);
        assert!(TraceSink::drain().is_empty());
    }

    #[test]
    fn enabled_records_with_ambient_context() {
        let _l = FLAG_LOCK.lock().unwrap();
        TraceSink::enable();
        TraceSink::clear();
        {
            let _g = TraceSink::scope(Phase::Communicate, Some(3));
            TraceSink::span("send", "net:S0->S1", 100, 250, 64);
        }
        TraceSink::span("idle", "cpu", 250, 260, 0);
        let evs = TraceSink::drain();
        TraceSink::disable();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].phase, Phase::Communicate);
        assert_eq!(evs[0].layer, Some(3));
        assert_eq!(evs[0].bytes, 64);
        assert_eq!(evs[1].phase, Phase::Other);
        assert_eq!(evs[1].layer, None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let _outer = TraceSink::scope(Phase::Offline, None);
        assert_eq!(TraceSink::current(), (Phase::Offline, None));
        {
            let _inner = TraceSink::scope(Phase::Compute1, Some(1));
            assert_eq!(TraceSink::current(), (Phase::Compute1, Some(1)));
        }
        assert_eq!(TraceSink::current(), (Phase::Offline, None));
    }

    #[test]
    fn adopt_preserves_wall_clock_and_order() {
        let _l = FLAG_LOCK.lock().unwrap();
        TraceSink::enable();
        TraceSink::clear();
        // Events "produced on another thread", with wall stamps from the
        // past that record() would have overwritten.
        let foreign: Vec<TraceEvent> = (0..3)
            .map(|i| TraceEvent {
                phase: Phase::Offline,
                op: format!("provider:gen_triple:{i}"),
                track: "provider".into(),
                layer: None,
                shape: None,
                placement: None,
                start_ns: i * 10,
                end_ns: i * 10 + 5,
                wall_ns: 1000 + i,
                bytes: 0,
            })
            .collect();
        TraceSink::span("local", "cpu", 0, 1, 0);
        TraceSink::adopt(foreign.clone());
        let evs = TraceSink::drain();
        TraceSink::disable();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].op, "local");
        for (i, ev) in evs[1..].iter().enumerate() {
            assert_eq!(ev, &foreign[i], "adopted event {i} was altered");
        }
    }

    #[test]
    fn adopt_when_disabled_is_a_no_op() {
        let _l = FLAG_LOCK.lock().unwrap();
        TraceSink::disable();
        TraceSink::clear();
        TraceSink::adopt(vec![TraceEvent {
            phase: Phase::Offline,
            op: "x".into(),
            track: "provider".into(),
            layer: None,
            shape: None,
            placement: None,
            start_ns: 0,
            end_ns: 1,
            wall_ns: 7,
            bytes: 0,
        }]);
        assert!(TraceSink::drain().is_empty());
    }

    #[test]
    fn explicit_phase_wins_over_ambient() {
        let _l = FLAG_LOCK.lock().unwrap();
        TraceSink::enable();
        TraceSink::clear();
        let _g = TraceSink::scope(Phase::Compute1, Some(7));
        TraceSink::record(TraceEvent {
            phase: Phase::Activation,
            op: "relu".into(),
            track: "client".into(),
            layer: Some(2),
            shape: None,
            placement: None,
            start_ns: 0,
            end_ns: 5,
            wall_ns: 0,
            bytes: 0,
        });
        let evs = TraceSink::drain();
        TraceSink::disable();
        assert_eq!(evs[0].phase, Phase::Activation);
        assert_eq!(evs[0].layer, Some(2));
    }
}

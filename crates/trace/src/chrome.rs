//! Chrome `chrome://tracing` / Perfetto JSON exporter.
//!
//! Emits the Trace Event Format's JSON-object form: complete (`"ph":"X"`)
//! events with microsecond timestamps, one `tid` per track, plus
//! `thread_name` metadata so the viewer labels lanes. The export is
//! byte-deterministic for a fixed event sequence: tracks are numbered in
//! first-appearance order, timestamps derive from simulated time only, and
//! the non-deterministic `wall_ns` field is excluded unless explicitly
//! requested.

use crate::event::TraceEvent;
use crate::json::{obj, JsonValue};

/// Options for [`chrome_trace_json_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ChromeTraceOptions {
    /// Include the wall-clock `wall_ns` field in each event's `args`.
    /// Off by default: wall time varies run to run and would break the
    /// byte-determinism guarantee of `psml trace --json`.
    pub include_wall: bool,
}

/// Exports events as a deterministic Chrome trace JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_with(events, ChromeTraceOptions::default())
}

/// [`chrome_trace_json`] with explicit options.
pub fn chrome_trace_json_with(events: &[TraceEvent], opts: ChromeTraceOptions) -> String {
    // Assign tids in first-appearance order (deterministic).
    let mut tracks: Vec<&str> = Vec::new();
    for ev in events {
        if !tracks.iter().any(|t| *t == ev.track) {
            tracks.push(&ev.track);
        }
    }
    let tid_of = |track: &str| tracks.iter().position(|t| *t == track).unwrap() as u64;

    let mut out: Vec<JsonValue> = Vec::with_capacity(events.len() + tracks.len());
    for (tid, track) in tracks.iter().enumerate() {
        out.push(obj([
            ("name", JsonValue::Str("thread_name".into())),
            ("ph", JsonValue::Str("M".into())),
            ("pid", JsonValue::UInt(1)),
            ("tid", JsonValue::UInt(tid as u64)),
            (
                "args",
                obj([("name", JsonValue::Str((*track).to_string()))]),
            ),
        ]));
    }
    for ev in events {
        let mut args: Vec<(String, JsonValue)> = Vec::new();
        args.push(("phase".into(), JsonValue::Str(ev.phase.name().into())));
        if let Some(layer) = ev.layer {
            args.push(("layer".into(), JsonValue::UInt(u64::from(layer))));
        }
        if let Some([m, k, n]) = ev.shape {
            args.push((
                "shape".into(),
                JsonValue::Array(vec![
                    JsonValue::UInt(u64::from(m)),
                    JsonValue::UInt(u64::from(k)),
                    JsonValue::UInt(u64::from(n)),
                ]),
            ));
        }
        if let Some(p) = ev.placement {
            args.push(("placement".into(), JsonValue::Str(p.into())));
        }
        if ev.bytes > 0 {
            args.push(("bytes".into(), JsonValue::UInt(ev.bytes)));
        }
        if opts.include_wall {
            args.push(("wall_ns".into(), JsonValue::UInt(ev.wall_ns)));
        }
        out.push(obj([
            ("name", JsonValue::Str(ev.op.clone())),
            ("cat", JsonValue::Str(ev.phase.name().into())),
            ("ph", JsonValue::Str("X".into())),
            // Microseconds with nanosecond precision; formatting an exact
            // multiple of 0.001 is deterministic.
            ("ts", micros(ev.start_ns)),
            ("dur", micros(ev.dur_ns())),
            ("pid", JsonValue::UInt(1)),
            ("tid", JsonValue::UInt(tid_of(&ev.track))),
            ("args", JsonValue::Object(args)),
        ]));
    }

    obj([
        ("schema", JsonValue::Str("psml.trace.v1".into())),
        ("displayTimeUnit", JsonValue::Str("ms".into())),
        ("traceEvents", JsonValue::Array(out)),
    ])
    .to_json()
}

/// Nanoseconds as a microsecond JSON number with exactly three decimals —
/// fixed-width formatting sidesteps any shortest-float variability.
fn micros(ns: u64) -> JsonValue {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    // Encode as a float token via string formatting: "12.345".
    let text = format!("{whole}.{frac:03}");
    JsonValue::Float(text.parse::<f64>().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json;

    fn ev(op: &str, track: &str, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            phase: Phase::Compute2,
            op: op.into(),
            track: track.into(),
            layer: Some(1),
            shape: Some([8, 16, 4]),
            placement: Some("gpu"),
            start_ns: start,
            end_ns: end,
            wall_ns: 123,
            bytes: 42,
        }
    }

    #[test]
    fn export_parses_and_is_deterministic() {
        let events = vec![ev("gemm", "gpu", 0, 1_500), ev("h2d", "pcie", 10, 20)];
        let a = chrome_trace_json(&events);
        let b = chrome_trace_json(&events);
        assert_eq!(a, b);
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("psml.trace.v1"));
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + 2 spans.
        assert_eq!(evs.len(), 4);
        let span = &evs[2];
        assert_eq!(span.get("name").unwrap().as_str(), Some("gemm"));
        assert_eq!(span.get("cat").unwrap().as_str(), Some("compute2"));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn wall_clock_excluded_by_default() {
        let events = vec![ev("gemm", "gpu", 0, 1000)];
        let text = chrome_trace_json(&events);
        assert!(!text.contains("wall_ns"));
        let with = chrome_trace_json_with(
            &events,
            ChromeTraceOptions { include_wall: true },
        );
        assert!(with.contains("wall_ns"));
    }

    #[test]
    fn micros_formatting_is_exact() {
        assert_eq!(micros(1_500).to_json(), "1.5");
        assert_eq!(micros(0).to_json(), "0.0");
        assert_eq!(micros(1_000_000).to_json(), "1000.0");
    }
}

//! Golden fixture corpus: every rule has a fixture seeding exactly its
//! violation, plus `clean.rs` which must scan clean. Each fixture declares
//! its identity and expectations in `//@` directives:
//!
//! ```text
//! //@ crate: <name>               crate the file pretends to live in
//! //@ module: <path>              module path the rules key on
//! //@ context: lib|bin|test|bench|example
//! //@ crate-root                  also run the crate-root policy rule
//! //@ expect: <rule-id>@<line>    one expected finding (repeatable)
//! ```
//!
//! The test asserts the *exact* multiset of `(rule, line)` findings — a
//! fixture violation detected by a different rule, at a different line,
//! or accompanied by extra findings is a failure.

use psml_lint::{rules, Context, RuleId, SourceFile};
use std::path::{Path, PathBuf};

struct Fixture {
    name: String,
    crate_name: String,
    module: String,
    context: Context,
    crate_root: bool,
    expect: Vec<(RuleId, u32)>,
    text: String,
}

fn parse_fixture(path: &Path) -> Fixture {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let text = std::fs::read_to_string(path).unwrap();
    let mut crate_name = None;
    let mut module = None;
    let mut context = None;
    let mut crate_root = false;
    let mut expect = Vec::new();
    for line in text.lines() {
        let Some(directive) = line.strip_prefix("//@ ") else {
            continue;
        };
        if let Some(v) = directive.strip_prefix("crate: ") {
            crate_name = Some(v.trim().to_string());
        } else if let Some(v) = directive.strip_prefix("module: ") {
            module = Some(v.trim().to_string());
        } else if let Some(v) = directive.strip_prefix("context: ") {
            context = Some(match v.trim() {
                "lib" => Context::Lib,
                "bin" => Context::Bin,
                "test" => Context::Test,
                "bench" => Context::Bench,
                "example" => Context::Example,
                other => panic!("{name}: unknown context `{other}`"),
            });
        } else if directive.trim() == "crate-root" {
            crate_root = true;
        } else if let Some(v) = directive.strip_prefix("expect: ") {
            let (rule, line) = v
                .trim()
                .split_once('@')
                .unwrap_or_else(|| panic!("{name}: malformed expect `{v}`"));
            let rule = RuleId::from_id(rule)
                .unwrap_or_else(|| panic!("{name}: unknown rule id `{rule}`"));
            expect.push((rule, line.parse().unwrap()));
        } else {
            panic!("{name}: unknown directive `{directive}`");
        }
    }
    Fixture {
        crate_name: crate_name.unwrap_or_else(|| panic!("{name}: missing //@ crate:")),
        module: module.unwrap_or_else(|| panic!("{name}: missing //@ module:")),
        context: context.unwrap_or_else(|| panic!("{name}: missing //@ context:")),
        crate_root,
        expect,
        text,
        name,
    }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn run_fixture(fx: &Fixture) -> Vec<(RuleId, u32)> {
    // The full pipeline: per-file rules plus symbol table, call graph,
    // taint, timing, and concurrency — fixtures for the inter-procedural
    // families need the whole stack, and running every fixture through it
    // also proves the new passes add no stray findings to the old corpus.
    let mut findings = psml_lint::lint_str_full(
        &fx.name,
        &fx.crate_name,
        &fx.module,
        fx.context,
        &fx.text,
    );
    if fx.crate_root {
        let f = SourceFile::parse(&fx.name, &fx.crate_name, &fx.module, fx.context, &fx.text);
        findings.extend(rules::crate_policy(&f));
    }
    let mut got: Vec<(RuleId, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    got.sort();
    got
}

#[test]
fn every_fixture_matches_its_expectations_exactly() {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() > RuleId::ALL.len(),
        "expected one fixture per rule plus clean.rs, found {}",
        entries.len()
    );
    for path in &entries {
        let fx = parse_fixture(path);
        let got = run_fixture(&fx);
        let mut want = fx.expect.clone();
        want.sort();
        assert_eq!(
            got,
            want,
            "{}: findings (left) do not match //@ expect directives (right)",
            fx.name
        );
    }
}

#[test]
fn corpus_covers_every_rule() {
    let mut covered = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(fixtures_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            for (rule, _) in parse_fixture(&path).expect {
                covered.insert(rule.id());
            }
        }
    }
    for rule in RuleId::ALL {
        assert!(
            covered.contains(rule.id()),
            "no fixture seeds a `{}` violation",
            rule.id()
        );
    }
}

#[test]
fn clean_fixture_exists_and_is_clean() {
    let fx = parse_fixture(&fixtures_dir().join("clean.rs"));
    assert!(fx.expect.is_empty(), "clean.rs must expect no findings");
    assert_eq!(run_fixture(&fx), Vec::new());
}

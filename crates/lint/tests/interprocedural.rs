//! Regression pin for the reason the inter-procedural pass exists: the
//! seeded cross-function leak fixture is *invisible* to the v1 file-
//! granular taint (`lint_str`) and *caught* by the full pipeline
//! (`lint_str_full`). If the first half of this test ever fails, v1 grew
//! cross-function powers and the pass is redundant; if the second half
//! fails, the flagship analysis regressed.

use psml_lint::{lint_str, lint_str_full, Context, RuleId};
use std::path::Path;

fn fixture_text() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("cross_function_leak.rs");
    std::fs::read_to_string(path).unwrap()
}

#[test]
fn v1_file_granular_taint_misses_the_cross_function_leak() {
    let findings = lint_str(
        "cross_function_leak.rs",
        "core",
        "core::serve",
        Context::Lib,
        &fixture_text(),
    );
    assert!(
        findings.is_empty(),
        "v1 was expected to miss the cross-function leak, found: {:?}",
        findings
            .iter()
            .map(|f| (f.rule.id(), f.line))
            .collect::<Vec<_>>()
    );
}

#[test]
fn full_pipeline_catches_the_cross_function_leak_with_evidence() {
    let findings = lint_str_full(
        "cross_function_leak.rs",
        "core",
        "core::serve",
        Context::Lib,
        &fixture_text(),
    );
    let leaks: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == RuleId::SecretCrossFunctionLeak)
        .collect();
    assert_eq!(
        leaks.len(),
        1,
        "expected exactly one cross-function leak, got {:?}",
        findings
            .iter()
            .map(|f| (f.rule.id(), f.line))
            .collect::<Vec<_>>()
    );
    let leak = leaks[0];
    // The evidence chain must walk the actual call path back to the type.
    assert!(
        leak.evidence.len() >= 3,
        "evidence chain too short: {:?}",
        leak.evidence
    );
    assert!(
        leak.evidence.iter().any(|e| e.note.contains("LimbVec")),
        "evidence never names the secret type: {:?}",
        leak.evidence
    );
    assert!(
        !leak.fingerprint.is_empty(),
        "finding must carry a stable fingerprint"
    );
}

//! The per-file rule families (unsafe, rng, secrecy, determinism),
//! implemented as token-pattern scans. The inter-procedural families
//! (cross-function secrecy, timing, concurrency) live in
//! [`crate::taint`] / [`crate::timing`] / [`crate::concurrency`] on top
//! of the workspace-wide symbol table and call graph.
//!
//! Each rule is a linear walk over [`SourceFile::toks`] looking for a
//! short token pattern (the lexer already stripped comments and literal
//! contents, so these patterns cannot be fooled by prose). Rules skip
//! lines inside `#[cfg(test)]` items and whole test/bench/example files
//! where the invariant genuinely does not apply — the exemptions per rule
//! are documented inline.

use crate::config::*;
use crate::findings::{Finding, RuleId};
use crate::lexer::{Tok, TokKind};
use crate::source::{module_in, SourceFile};
use std::collections::BTreeSet;

/// Secret-type registry: the built-in list plus every type carrying the
/// `#[doc = "psml-secret"]` marker anywhere in the workspace.
#[derive(Clone, Default, Debug)]
pub struct SecretRegistry {
    marked: BTreeSet<String>,
}

impl SecretRegistry {
    /// Whether `name` is a secret type.
    pub fn contains(&self, name: &str) -> bool {
        SECRET_TYPES.contains(&name) || self.marked.contains(name)
    }

    /// Scans `f` for `#[doc = "psml-secret"]` markers and records the
    /// struct/enum each one annotates.
    pub fn collect(&mut self, f: &SourceFile) {
        let t = &f.toks;
        for i in 0..t.len() {
            // #[doc = "psml-secret"]
            if t[i].text == "#"
                && tok_is(t, i + 1, "[")
                && tok_is(t, i + 2, "doc")
                && tok_is(t, i + 3, "=")
                && t.get(i + 4).map(|x| x.kind) == Some(TokKind::Str)
                && t.get(i + 4).map(|x| x.text.as_str()) == Some(SECRET_MARKER)
                && tok_is(t, i + 5, "]")
            {
                // Skip further attributes and visibility, find the type name.
                let mut j = i + 6;
                while j < t.len() {
                    match t[j].text.as_str() {
                        "#" => j = skip_attr(t, j),
                        "pub" => {
                            j += 1;
                            if tok_is(t, j, "(") {
                                j = skip_balanced(t, j, "(", ")");
                            }
                        }
                        "struct" | "enum" | "union" | "type" => {
                            if let Some(name) = t.get(j + 1) {
                                self.marked.insert(name.text.clone());
                            }
                            break;
                        }
                        _ => break,
                    }
                }
            }
        }
    }
}

fn tok_is(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).map(|x| x.text.as_str()) == Some(s)
}

/// Skips an attribute starting at the `#` token; returns the index after
/// the closing `]`.
fn skip_attr(t: &[Tok], i: usize) -> usize {
    debug_assert_eq!(t[i].text, "#");
    let mut j = i + 1;
    if tok_is(t, j, "!") {
        j += 1;
    }
    if tok_is(t, j, "[") {
        return skip_balanced(t, j, "[", "]");
    }
    j
}

/// Skips a balanced delimiter run starting at the opener; returns the
/// index after the matching closer.
fn skip_balanced(t: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < t.len() {
        if t[j].text == open {
            depth += 1;
        } else if t[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// Runs every per-file rule over `f`.
pub fn lint_file(f: &SourceFile, secrets: &SecretRegistry) -> Vec<Finding> {
    let mut out = Vec::new();
    unsafe_hygiene(f, &mut out);
    rng_discipline(f, &mut out);
    secrecy(f, secrets, &mut out);
    determinism(f, &mut out);
    out
}

fn finding(f: &SourceFile, rule: RuleId, line: u32, message: String) -> Finding {
    Finding::new(rule, &f.path, line, message, f.line_text(line))
}

// ---------------------------------------------------------------- unsafe --

/// Rule family 1: unsafe hygiene.
///
/// Applies everywhere, including tests — an unjustified `unsafe` in a test
/// is still unvetted unsafe code in the workspace.
fn unsafe_hygiene(f: &SourceFile, out: &mut Vec<Finding>) {
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !module_in(&f.module, UNSAFE_MODULES) {
            out.push(finding(
                f,
                RuleId::UnsafeOutsideAllowlist,
                t.line,
                format!(
                    "`unsafe` in `{}`; only {} may contain unsafe code",
                    f.module,
                    UNSAFE_MODULES.join(", ")
                ),
            ));
        }
        if !has_safety_justification(f, t.line) {
            let what = f
                .toks
                .get(i + 1)
                .map(|n| match n.text.as_str() {
                    "{" => "block",
                    "impl" => "impl",
                    "trait" => "trait",
                    "fn" => "fn",
                    _ => "item",
                })
                .unwrap_or("item");
            out.push(finding(
                f,
                RuleId::UnsafeMissingSafety,
                t.line,
                format!(
                    "unsafe {what} without a `// SAFETY:` comment or `# Safety` doc section"
                ),
            ));
        }
    }
}

/// Looks for a `SAFETY:` / `# Safety` marker in the contiguous run of
/// comment and attribute lines directly above `line` (the statement the
/// unsafe token sits in may span lines, so the marker may also sit on the
/// unsafe token's own line).
fn has_safety_justification(f: &SourceFile, line: u32) -> bool {
    let marked = |l: u32| {
        f.comments
            .iter()
            .filter(|c| c.line <= l && l <= c.end_line)
            .any(|c| c.text.contains("SAFETY:") || c.text.contains("# Safety"))
    };
    if marked(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = f.line_text(l);
        let trimmed = text.trim_start();
        let is_comment_or_attr = trimmed.starts_with("//")
            || trimmed.starts_with("#[")
            || trimmed.starts_with("#![")
            || f.comments.iter().any(|c| c.line <= l && l <= c.end_line);
        if !is_comment_or_attr {
            return false;
        }
        if marked(l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Crate-root policy: unsafe-bearing crates deny `unsafe_op_in_unsafe_fn`;
/// everyone else forbids `unsafe_code` outright. Run on crate root files
/// only (`crates/<c>/src/lib.rs`, workspace `src/lib.rs`).
pub fn crate_policy(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let (lint_name, attr) = if UNSAFE_CRATES.contains(&f.crate_name.as_str()) {
        ("unsafe_op_in_unsafe_fn", "#![deny(unsafe_op_in_unsafe_fn)]")
    } else {
        ("unsafe_code", "#![forbid(unsafe_code)]")
    };
    let t = &f.toks;
    let mut found = false;
    let mut i = 0;
    while i + 2 < t.len() {
        if t[i].text == "#" && t[i + 1].text == "!" && t[i + 2].text == "[" {
            let end = skip_balanced(t, i + 2, "[", "]");
            let idents: Vec<&str> = t[i + 2..end]
                .iter()
                .filter(|x| x.kind == TokKind::Ident)
                .map(|x| x.text.as_str())
                .collect();
            // `forbid` is acceptable wherever `deny` is required (it is
            // strictly stronger).
            let level_ok = idents.contains(&"forbid") || idents.contains(&"deny");
            if level_ok && idents.contains(&lint_name) {
                found = true;
                break;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    if !found {
        out.push(finding(
            f,
            RuleId::UnsafeCratePolicy,
            1,
            format!("crate root of `{}` is missing `{attr}`", f.crate_name),
        ));
    }
    out
}

// ------------------------------------------------------------------- rng --

/// Rule family 2: RNG discipline.
///
/// Exemptions: test/bench/example contexts and `#[cfg(test)]` spans —
/// tests mint fixed-seed generators as fixtures, which threatens no
/// protocol stream.
fn rng_discipline(f: &SourceFile, out: &mut Vec<Finding>) {
    let t = &f.toks;
    for i in 0..t.len() {
        if f.is_test_line(t[i].line) {
            continue;
        }
        // Mt19937 :: <ctor>
        if t[i].text == "Mt19937"
            && tok_is(t, i + 1, ":")
            && tok_is(t, i + 2, ":")
            && t.get(i + 3)
                .is_some_and(|c| RNG_CONSTRUCTORS.contains(&c.text.as_str()))
            && !module_in(&f.module, RNG_MODULES)
        {
            out.push(finding(
                f,
                RuleId::RngConstruction,
                t[i].line,
                format!(
                    "`Mt19937::{}` in `{}`; generators are minted only in {} — derive one via psml_parallel::protocol_rng/derived_rng",
                    t[i + 3].text,
                    f.module,
                    RNG_MODULES.join(", ")
                ),
            ));
        }
        if t[i].kind == TokKind::Ident
            && t[i].text == FAULT_RNG_IDENT
            && !module_in(&f.module, FAULT_RNG_MODULES)
        {
            out.push(finding(
                f,
                RuleId::FaultRngReference,
                t[i].line,
                format!(
                    "`{}` referenced in `{}`; the fault RNG is private to {}",
                    FAULT_RNG_IDENT,
                    f.module,
                    FAULT_RNG_MODULES.join(", ")
                ),
            ));
        }
        if t[i].kind == TokKind::Ident
            && t[i].text == FAULT_INJECTOR_IDENT
            && !module_in(&f.module, FAULT_INJECTOR_MODULES)
        {
            out.push(finding(
                f,
                RuleId::FaultRngReference,
                t[i].line,
                format!(
                    "`{}` referenced in `{}`; fault injection is wired only inside {}",
                    FAULT_INJECTOR_IDENT,
                    f.module,
                    FAULT_INJECTOR_MODULES.join(", ")
                ),
            ));
        }
    }
}

// --------------------------------------------------------------- secrecy --

/// Rule family 3: secrecy.
///
/// Exemptions: test contexts (tests fabricate their own "secrets" and the
/// redaction regression test must be able to format one); the redaction
/// modules may hand-write `Debug` impls (but still may not *derive*).
fn secrecy(f: &SourceFile, secrets: &SecretRegistry, out: &mut Vec<Finding>) {
    let t = &f.toks;

    // (a) derive(Debug) on a secret type — forbidden everywhere.
    let mut i = 0;
    while i < t.len() {
        if t[i].text == "derive" && i > 0 && tok_is(t, i - 1, "[") && tok_is(t, i + 1, "(") {
            let end = skip_balanced(t, i + 1, "(", ")");
            let derives_debug = t[i + 1..end].iter().any(|x| x.text == "Debug");
            // After `)]`, skip further attributes/visibility to the item.
            let mut j = end + 1; // skip `]`
            loop {
                if tok_is(t, j, "#") {
                    j = skip_attr(t, j);
                } else if tok_is(t, j, "pub") {
                    j += 1;
                    if tok_is(t, j, "(") {
                        j = skip_balanced(t, j, "(", ")");
                    }
                } else {
                    break;
                }
            }
            if derives_debug
                && (tok_is(t, j, "struct") || tok_is(t, j, "enum") || tok_is(t, j, "union"))
            {
                if let Some(name) = t.get(j + 1) {
                    if secrets.contains(&name.text) {
                        out.push(finding(
                            f,
                            RuleId::SecretDebugDerive,
                            t[i].line,
                            format!(
                                "secret type `{}` derives Debug; write a redacting impl (shape + ring, never limbs)",
                                name.text
                            ),
                        ));
                    }
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }

    // (b) manual `impl ... Debug/Display for <Secret>` outside redaction
    //     modules.
    for i in 0..t.len() {
        if (t[i].text == "Debug" || t[i].text == "Display")
            && tok_is(t, i + 1, "for")
            && !f.is_test_line(t[i].line)
            && !module_in(&f.module, REDACTION_MODULES)
        {
            // Find the implemented type: idents up to the opening `{` or
            // `where`.
            let mut j = i + 2;
            while j < t.len() && t[j].text != "{" && t[j].text != "where" {
                if t[j].kind == TokKind::Ident && secrets.contains(&t[j].text) {
                    out.push(finding(
                        f,
                        RuleId::SecretDebugImpl,
                        t[i].line,
                        format!(
                            "manual {} impl for secret type `{}` in `{}`; redacting impls live only in {}",
                            t[i].text,
                            t[j].text,
                            f.module,
                            REDACTION_MODULES.join(", ")
                        ),
                    ));
                    break;
                }
                j += 1;
            }
        }
    }

    // (c) tainted values reaching format macros / trace sinks.
    let tainted = taint_set(t, secrets);
    let mut i = 0;
    while i < t.len() {
        let is_format_macro = t[i].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&t[i].text.as_str())
            && tok_is(t, i + 1, "!")
            && tok_is(t, i + 2, "(");
        let is_trace_sink = t[i].text == "TraceSink"
            && tok_is(t, i + 1, ":")
            && tok_is(t, i + 2, ":")
            && t.get(i + 3).map(|x| x.kind) == Some(TokKind::Ident)
            && tok_is(t, i + 4, "(");
        let open = if is_format_macro {
            i + 2
        } else if is_trace_sink {
            i + 4
        } else {
            i += 1;
            continue;
        };
        let end = skip_balanced(t, open, "(", ")");
        if !f.is_test_line(t[i].line) {
            for k in open + 1..end.saturating_sub(1) {
                let x = &t[k];
                if x.kind != TokKind::Ident {
                    continue;
                }
                let secret_name = secrets.contains(&x.text);
                let is_tainted = tainted.contains(x.text.as_str());
                if !secret_name && !is_tainted {
                    continue;
                }
                // Metadata accessors are the sanctioned way to format
                // information about a secret: `pair.shape()` is fine, and
                // so is a longer chain that *ends* in one
                // (`triple.u.shape()`) — the formatted value is the chain
                // result, not the secret.
                if chain_ends_in_metadata(t, k) {
                    continue;
                }
                // A secret type name in turbofish/path position that never
                // touches a value (e.g. `size_of::<SharePair<R>>()`) is
                // still flagged conservatively — protocol code has no
                // business naming secrets inside a format call.
                out.push(finding(
                    f,
                    RuleId::SecretFormatLeak,
                    x.line,
                    format!(
                        "`{}` ({}) reaches `{}{}`; format only metadata accessors ({})",
                        x.text,
                        if secret_name {
                            "secret type".to_string()
                        } else {
                            "secret-typed value".to_string()
                        },
                        t[i].text,
                        if is_format_macro { "!" } else { "" },
                        METADATA_ACCESSORS.join("/"),
                    ),
                ));
            }
        }
        i = end;
    }
}

/// Walks the postfix chain starting at the identifier at `k`
/// (`ident(.field | .method(..))*`) and reports whether it ends in a
/// *called* metadata accessor, which yields shape/dimension data rather
/// than limb values.
fn chain_ends_in_metadata(t: &[Tok], k: usize) -> bool {
    let mut j = k + 1;
    let mut last_call: Option<&str> = None;
    while tok_is(t, j, ".") && t.get(j + 1).map(|x| x.kind) == Some(TokKind::Ident) {
        let name = t[j + 1].text.as_str();
        j += 2;
        if tok_is(t, j, "(") {
            last_call = Some(name);
            j = skip_balanced(t, j, "(", ")");
        } else {
            // Bare field access (`triple.u`) exposes the secret itself
            // unless a later accessor call closes the chain.
            last_call = None;
        }
    }
    last_call.is_some_and(|m| METADATA_ACCESSORS.contains(&m))
}

/// Identifiers bound with a secret type annotation anywhere in the file:
/// `x: SharePair<R>` (params, fields, lets) and `let x = SharePair::...`.
fn taint_set<'a>(t: &'a [Tok], secrets: &SecretRegistry) -> BTreeSet<&'a str> {
    let mut set = BTreeSet::new();
    for i in 0..t.len() {
        // ident : [&] [mut] ['a] Secret
        if t[i].kind == TokKind::Ident && tok_is(t, i + 1, ":") && !tok_is(t, i + 2, ":") {
            let mut j = i + 2;
            while j < t.len()
                && (t[j].text == "&"
                    || t[j].text == "mut"
                    || t[j].kind == TokKind::Lifetime)
            {
                j += 1;
            }
            if t.get(j).is_some_and(|x| secrets.contains(&x.text)) {
                set.insert(t[i].text.as_str());
            }
        }
        // let [mut] x = Secret :: ...
        if t[i].text == "let" {
            let mut j = i + 1;
            if tok_is(t, j, "mut") {
                j += 1;
            }
            if t.get(j).map(|x| x.kind) == Some(TokKind::Ident)
                && tok_is(t, j + 1, "=")
                && t.get(j + 2).is_some_and(|x| secrets.contains(&x.text))
            {
                set.insert(t[j].text.as_str());
            }
        }
    }
    set
}

// ----------------------------------------------------------- determinism --

/// Rule family 4: determinism.
///
/// Exemptions: modules outside [`DETERMINISM_MODULES`] (tracing and
/// benchmarking exist to read the host clock; `parallel`'s thread seeding
/// is the paper's design and outside the protocol's replay domain), the
/// scoped [`DETERMINISM_EXEMPT_MODULES`] allowlist (real-socket
/// supervision, where wall-clock deadlines are the ground truth), plus
/// test spans.
fn determinism(f: &SourceFile, out: &mut Vec<Finding>) {
    if !module_in(&f.module, DETERMINISM_MODULES)
        || module_in(&f.module, DETERMINISM_EXEMPT_MODULES)
    {
        return;
    }
    let t = &f.toks;
    for tok in t.iter() {
        if tok.kind == TokKind::Ident
            && WALL_CLOCK_IDENTS.contains(&tok.text.as_str())
            && !f.is_test_line(tok.line)
        {
            out.push(finding(
                f,
                RuleId::WallClock,
                tok.line,
                format!(
                    "`{}` in protocol path `{}`; use simulated time (SimTime) — wall clock breaks replay identity",
                    tok.text, f.module
                ),
            ));
        }
    }

    // Names bound to HashMaps in this file.
    let mut maps: BTreeSet<&str> = BTreeSet::new();
    for i in 0..t.len() {
        if t[i].kind == TokKind::Ident && tok_is(t, i + 1, ":") && !tok_is(t, i + 2, ":") {
            let mut j = i + 2;
            while j < t.len() && (t[j].text == "&" || t[j].text == "mut") {
                j += 1;
            }
            if tok_is(t, j, "HashMap") {
                maps.insert(t[i].text.as_str());
            }
        }
        if t[i].text == "let" {
            let mut j = i + 1;
            if tok_is(t, j, "mut") {
                j += 1;
            }
            if t.get(j).map(|x| x.kind) == Some(TokKind::Ident) {
                // let x = HashMap::new()  /  let x: HashMap<..> = ..
                if (tok_is(t, j + 1, "=") && tok_is(t, j + 2, "HashMap"))
                    || (tok_is(t, j + 1, ":") && tok_is(t, j + 2, "HashMap"))
                {
                    maps.insert(t[j].text.as_str());
                }
            }
        }
    }
    if maps.is_empty() {
        return;
    }

    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident || !maps.contains(t[i].text.as_str()) {
            continue;
        }
        if f.is_test_line(t[i].line) {
            continue;
        }
        // map . iter() -like call
        if tok_is(t, i + 1, ".")
            && t.get(i + 2)
                .is_some_and(|m| HASHMAP_ITER_METHODS.contains(&m.text.as_str()))
            && tok_is(t, i + 3, "(")
        {
            out.push(finding(
                f,
                RuleId::HashMapIteration,
                t[i].line,
                format!(
                    "`{}.{}()` iterates a HashMap in `{}`; iteration order is seeded per-process — use a BTreeMap or sort keys",
                    t[i].text, t[i + 2].text, f.module
                ),
            ));
        }
        // `for .. in [&][mut] [self.]map {` — iteration via IntoIterator.
        // Walk back over the iterable expression path (idents, `.`, `&`,
        // `mut`) looking for the `in` keyword; require the map name to be
        // the final path segment (next token opens the loop body).
        else if tok_is(t, i + 1, "{") && i > 0 {
            let mut j = i - 1;
            let mut saw_in = false;
            for _ in 0..6 {
                match t[j].text.as_str() {
                    "in" => {
                        saw_in = true;
                        break;
                    }
                    "." | "&" | "mut" => {}
                    _ if t[j].kind == TokKind::Ident => {}
                    _ => break,
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if saw_in {
                out.push(finding(
                    f,
                    RuleId::HashMapIteration,
                    t[i].line,
                    format!(
                        "`for .. in {}` iterates a HashMap in `{}`; iteration order is seeded per-process — use a BTreeMap or sort keys",
                        t[i].text, f.module
                    ),
                ));
            }
        }
    }
}

//! `psml-lint` — the workspace's secrecy/determinism/unsafe-hygiene gate.
//!
//! ```text
//! psml-lint [--root DIR] [--deny all|FAMILY[,FAMILY..]] [--json FILE]
//!           [--crate NAME] [--quiet] [--list-rules]
//! ```
//!
//! Scans the workspace (default: the nearest ancestor of the current
//! directory containing `Cargo.toml` + `crates/`), prints one diagnostic
//! per finding, and optionally writes the versioned `psml.lint.v2`
//! document. With `--deny`, findings in the named families (or any
//! finding, for `all`) make the exit status 1 — that is the CI gate.
//!
//! `--crate NAME` keeps only findings in `crates/NAME/` (the self-scan
//! job uses `--crate lint`). The *scan* still covers the whole workspace:
//! the inter-procedural passes need every crate's symbols to resolve
//! cross-crate calls, so narrowing the scan would weaken the analysis.

use psml_lint::{lint_workspace, RuleId};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: psml-lint [--root DIR] [--deny all|FAMILY[,FAMILY..]] \
         [--json FILE] [--crate NAME] [--quiet] [--list-rules]"
    );
    std::process::exit(2);
}

fn find_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        match dir.parent() {
            Some(p) => dir = p.to_path_buf(),
            None => return start,
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny: Vec<String> = Vec::new();
    let mut json_path: Option<PathBuf> = None;
    let mut crate_filter: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--deny" => {
                let v = args.next().unwrap_or_else(|| usage());
                deny.extend(v.split(',').map(str::to_string));
            }
            "--json" => json_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--crate" => crate_filter = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            "--list-rules" => {
                for r in RuleId::ALL {
                    println!("{:<40} {}", r.id(), r.description());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("psml-lint: unknown argument '{other}'");
                usage();
            }
        }
    }

    for d in &deny {
        if d != "all" && !RuleId::FAMILIES.contains(&d.as_str()) {
            eprintln!(
                "psml-lint: unknown --deny family '{d}' (expected all, {})",
                RuleId::FAMILIES.join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let root = root
        .unwrap_or_else(|| find_root(std::env::current_dir().unwrap_or_else(|_| ".".into())));
    let mut report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("psml-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(name) = &crate_filter {
        let prefix = format!("crates/{name}/");
        report.findings.retain(|f| f.file.starts_with(&prefix));
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("psml-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_human());
    }

    let denied = report.findings.iter().any(|f| {
        deny.iter()
            .any(|d| d == "all" || d == f.rule.family())
    });
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

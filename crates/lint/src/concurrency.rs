//! Concurrency discipline over the audited lock-bearing modules.
//!
//! Two rules, both driven by guard-scope tracking plus call-graph
//! summaries:
//!
//! * **Lock-order consistency** — every pair of locks must be acquired
//!   in one global order on every path (including paths that cross
//!   function boundaries). With both `(a, b)` and `(b, a)` edges present
//!   a deadlock needs only two threads; the finding lands on the edge
//!   that violates the canonical (lexicographic) order.
//! * **No blocking `recv()` under a lock** — a worker parked in
//!   `Receiver::recv` while holding a mutex starves every thread that
//!   needs the mutex to *send* (the exact shape a channel-fed pool can
//!   hit). `Condvar::wait` releases its guard and is fine.
//!
//! Guard scopes: a `let`-bound guard lives to the end of its enclosing
//! block or an explicit `drop(guard)`; a statement temporary lives to
//! the `;`.

use crate::callgraph::CallGraph;
use crate::config::{CONCURRENCY_MODULES, LOCK_METHODS};
use crate::findings::{Evidence, Finding, RuleId};
use crate::lexer::{Tok, TokKind};
use crate::source::{module_in, SourceFile};
use crate::symbols::SymbolTable;
use std::collections::BTreeMap;

/// One lock acquisition inside a function body.
#[derive(Clone, Debug)]
struct LockEvent {
    /// Normalized lock identity: `module::chain-tail`.
    identity: String,
    /// Token index of the acquisition (`.lock()` receiver chain start).
    tok: usize,
    /// Token index one past the guard's scope.
    scope_end: usize,
    line: u32,
}

/// What callers need to know about a function's locking behavior.
#[derive(Clone, Default, Debug, PartialEq)]
struct LockSummary {
    /// Locks acquired anywhere inside (transitively), with one site each.
    acquires: BTreeMap<String, Evidence>,
    /// A blocking `recv()` anywhere inside (transitively).
    recv: Option<Evidence>,
}

/// Runs both concurrency rules; findings are emitted only for functions
/// inside [`CONCURRENCY_MODULES`], but summaries cover the whole
/// workspace so cross-module call chains are visible.
pub fn run(sources: &[SourceFile], table: &SymbolTable, cg: &CallGraph) -> Vec<Finding> {
    let n = table.fns.len();
    let events: Vec<Vec<LockEvent>> = (0..n)
        .map(|id| collect_events(id, sources, table))
        .collect();
    let recvs: Vec<Vec<(usize, u32)>> = (0..n)
        .map(|id| collect_recvs(id, sources, table))
        .collect();

    // Fixpoint over call edges: a function "acquires" what its callees
    // acquire and "recvs" if any callee does.
    let mut summaries = vec![LockSummary::default(); n];
    for _ in 0..10 {
        let mut changed = false;
        for id in 0..n {
            let f = &sources[table.fns[id].file];
            let mut s = LockSummary::default();
            for ev in &events[id] {
                s.acquires.entry(ev.identity.clone()).or_insert(Evidence {
                    file: f.path.clone(),
                    line: ev.line,
                    note: format!("acquires `{}`", ev.identity),
                });
            }
            if let Some(&(_, line)) = recvs[id].first() {
                s.recv = Some(Evidence {
                    file: f.path.clone(),
                    line,
                    note: "blocking recv() here".into(),
                });
            }
            for site in cg.calls[id].values() {
                let callee = summaries[site.callee].clone();
                for (ident, ev) in callee.acquires {
                    s.acquires.entry(ident).or_insert(ev);
                }
                if s.recv.is_none() {
                    s.recv = callee.recv;
                }
            }
            if s != summaries[id] {
                summaries[id] = s;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Edge collection + recv-under-lock, only in the audited modules.
    let mut edges: BTreeMap<(String, String), (String, u32, Vec<Evidence>)> = BTreeMap::new();
    let mut findings = Vec::new();
    for id in 0..n {
        let d = &table.fns[id];
        let f = &sources[d.file];
        if !module_in(&f.module, CONCURRENCY_MODULES) {
            continue;
        }
        for held in &events[id] {
            if f.is_test_line(held.line) {
                continue;
            }
            let span = held.tok..held.scope_end;
            // Direct nested acquisitions.
            for other in &events[id] {
                if other.tok > held.tok
                    && span.contains(&other.tok)
                    && other.identity != held.identity
                {
                    edges
                        .entry((held.identity.clone(), other.identity.clone()))
                        .or_insert_with(|| {
                            (
                                f.path.clone(),
                                other.line,
                                vec![
                                    Evidence {
                                        file: f.path.clone(),
                                        line: held.line,
                                        note: format!("holding `{}` (acquired here)", held.identity),
                                    },
                                    Evidence {
                                        file: f.path.clone(),
                                        line: other.line,
                                        note: format!("acquires `{}`", other.identity),
                                    },
                                ],
                            )
                        });
                }
            }
            // Direct blocking recv under the guard.
            for &(rtok, rline) in &recvs[id] {
                if span.contains(&rtok) {
                    let mut fin = Finding::new(
                        RuleId::ConcurrencyRecvUnderLock,
                        &f.path,
                        rline,
                        format!(
                            "blocking `recv()` while holding `{}`; senders needing the lock deadlock — use Condvar::wait (releases the guard) or drop the guard first",
                            held.identity
                        ),
                        f.line_text(rline),
                    );
                    fin.evidence = vec![Evidence {
                        file: f.path.clone(),
                        line: held.line,
                        note: format!("`{}` acquired here", held.identity),
                    }];
                    findings.push(fin);
                }
            }
            // Through calls made under the guard.
            for site in cg.calls[id].values() {
                let pos = site.name_tok;
                if !span.contains(&pos) || f.is_test_line(site.line) {
                    continue;
                }
                let callee = &summaries[site.callee];
                let callee_name = &table.fns[site.callee].name;
                for (ident, ev) in &callee.acquires {
                    if *ident == held.identity {
                        continue;
                    }
                    edges
                        .entry((held.identity.clone(), ident.clone()))
                        .or_insert_with(|| {
                            (
                                f.path.clone(),
                                site.line,
                                vec![
                                    Evidence {
                                        file: f.path.clone(),
                                        line: held.line,
                                        note: format!("holding `{}` (acquired here)", held.identity),
                                    },
                                    Evidence {
                                        file: f.path.clone(),
                                        line: site.line,
                                        note: format!("calls `{callee_name}`"),
                                    },
                                    ev.clone(),
                                ],
                            )
                        });
                }
                if let Some(rev) = &callee.recv {
                    let mut fin = Finding::new(
                        RuleId::ConcurrencyRecvUnderLock,
                        &f.path,
                        site.line,
                        format!(
                            "`{callee_name}` blocks in `recv()` and is called while holding `{}`",
                            held.identity
                        ),
                        f.line_text(site.line),
                    );
                    fin.evidence = vec![
                        Evidence {
                            file: f.path.clone(),
                            line: held.line,
                            note: format!("`{}` acquired here", held.identity),
                        },
                        rev.clone(),
                    ];
                    findings.push(fin);
                }
            }
        }
    }

    // Inversions: both directions observed. Flag the edge that violates
    // the canonical lexicographic order — deterministic, and exactly one
    // of the two sites gets the finding.
    for ((a, b), (file, line, evidence)) in &edges {
        if a <= b {
            continue;
        }
        if let Some((ofile, oline, _)) = edges.get(&(b.clone(), a.clone())) {
            let mut fin = Finding::new(
                RuleId::ConcurrencyLockOrder,
                file,
                *line,
                format!(
                    "`{b}` then `{a}` here, but `{ofile}:{oline}` acquires `{a}` then `{b}`; pick one global order",
                    b = b,
                    a = a,
                ),
                "",
            );
            let mut ev = evidence.clone();
            ev.push(Evidence {
                file: ofile.clone(),
                line: *oline,
                note: format!("opposite order `{a}` -> `{b}` here"),
            });
            fin.evidence = ev;
            findings.push(fin);
        }
    }
    findings
}

fn tok_is(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).map(|x| x.text.as_str()) == Some(s)
}

/// Finds every `.lock()` / `.read()` / `.write()` (zero-argument) in the
/// body and computes each guard's scope.
fn collect_events(id: usize, sources: &[SourceFile], table: &SymbolTable) -> Vec<LockEvent> {
    let d = &table.fns[id];
    let Some((open, end)) = d.body else { return Vec::new() };
    let f = &sources[d.file];
    let t = &f.toks;
    let mut out = Vec::new();
    for j in open + 1..end.saturating_sub(3) {
        if t[j].text != "."
            || !t
                .get(j + 1)
                .is_some_and(|x| LOCK_METHODS.contains(&x.text.as_str()))
            || !tok_is(t, j + 2, "(")
            || !tok_is(t, j + 3, ")")
        {
            continue;
        }
        // The receiver chain, walked backward: `self.state` -> tail
        // `state`; a lone param name is its own tail. Computed receivers
        // (`stdout().lock()`) have no stable identity and are skipped.
        let mut k = j;
        let mut tail: Option<&str> = None;
        while k >= 1 && t[k - 1].kind == TokKind::Ident {
            if tail.is_none() {
                tail = Some(t[k - 1].text.as_str());
            }
            if k >= 2 && t[k - 2].text == "." {
                k -= 2;
            } else {
                k -= 1;
                break;
            }
        }
        let Some(tail) = tail else { continue };
        if tail == "self" {
            continue;
        }
        let chain_start = k;
        let identity = format!("{}::{}", f.module, tail);
        let scope_end = guard_scope(t, chain_start, j, end);
        out.push(LockEvent {
            identity,
            tok: chain_start,
            scope_end,
            line: t[j + 1].line,
        });
    }
    out
}

/// Guard scope: for `let g = <chain>.lock()...` the enclosing block (or
/// `drop(g)`); otherwise the end of the statement.
fn guard_scope(t: &[Tok], chain_start: usize, lock_dot: usize, body_end: usize) -> usize {
    // Look backward for a binding: `let [mut] g =` or
    // `let Ok(mut g) =` / `if let Some(g) =`.
    let mut guard: Option<&str> = None;
    if chain_start >= 2 && t[chain_start - 1].text == "=" {
        let b = chain_start - 2;
        if t[b].text == ")" && b >= 2 {
            // pattern form: ident `)` <- g <- [mut] <- `(` <- Ctor <- let
            if t[b - 1].kind == TokKind::Ident {
                guard = Some(t[b - 1].text.as_str());
            }
        } else if t[b].kind == TokKind::Ident
            && b >= 1
            && (t[b - 1].text == "let" || t[b - 1].text == "mut")
        {
            guard = Some(t[b].text.as_str());
        }
    }
    match guard {
        Some(g) => {
            // To the end of the enclosing block, or an explicit drop.
            let mut depth = 0i64;
            let mut u = lock_dot;
            while u < body_end {
                match t[u].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return u;
                        }
                    }
                    "drop"
                        if depth >= 0
                            && tok_is(t, u + 1, "(")
                            && tok_is(t, u + 2, g)
                            && tok_is(t, u + 3, ")") =>
                    {
                        return u;
                    }
                    _ => {}
                }
                u += 1;
            }
            body_end
        }
        None => {
            // Statement temporary: to the `;` (or block edge).
            let mut depth = 0i64;
            let mut u = lock_dot;
            while u < body_end {
                match t[u].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            return u;
                        }
                    }
                    ";" if depth == 0 => return u,
                    _ => {}
                }
                u += 1;
            }
            body_end
        }
    }
}

/// Every zero-argument `.recv()` call in the body (`recv_timeout` /
/// `try_recv` are bounded; a `recv(peer)` method with arguments is not a
/// channel receive).
fn collect_recvs(id: usize, sources: &[SourceFile], table: &SymbolTable) -> Vec<(usize, u32)> {
    let d = &table.fns[id];
    let Some((open, end)) = d.body else { return Vec::new() };
    let t = &sources[d.file].toks;
    let mut out = Vec::new();
    for j in open + 1..end.saturating_sub(3) {
        if t[j].text == "."
            && tok_is(t, j + 1, "recv")
            && tok_is(t, j + 2, "(")
            && tok_is(t, j + 3, ")")
        {
            out.push((j + 1, t[j + 1].line));
        }
    }
    out
}

//! The rule configuration: allowlists, registries, and sink catalogs.
//!
//! Everything here is a compile-time constant on purpose. The analyzer
//! guards *protocol invariants of this workspace* — which modules may hold
//! `unsafe`, which may mint RNGs, which types are secret — and those facts
//! change only when the architecture changes, at which point editing this
//! file (and re-running the tier-1 gate) *is* the review trail. A config
//! file would invite drive-by exemptions that no compiler error ever
//! surfaces. Rationale for each entry lives in DESIGN.md § Static
//! analysis.

/// Modules permitted to contain the `unsafe` keyword at all. Each exists
/// for one vetted reason: the GEMM carrier casts (`tensor::gemm`), the
/// `WRAPPING_U64` trait contract (`tensor::num`), the AMX tile-unit
/// configuration and inline-asm kernel of the limb-split quantized path
/// (`tensor::quant`), the F16C `vcvtps2ph`/`vcvtph2ps` rounding loop
/// (`tensor::mixed`), the scoped-job lifetime transmute
/// (`parallel::pool`), the `Fixed64` ring carrier's `unsafe impl Num`
/// (`mpc::fixed`), and the `dlopen`/`dlsym`-loaded OpenCL FFI surface of
/// the optional device backend (`gpu-sim::opencl`).
pub const UNSAFE_MODULES: &[&str] = &[
    "tensor::gemm",
    "tensor::num",
    "tensor::quant",
    "tensor::mixed",
    "parallel::pool",
    "mpc::fixed",
    "gpu-sim::opencl",
];

/// Crates that contain an allowlisted unsafe module. Their roots must
/// carry `#![deny(unsafe_op_in_unsafe_fn)]` (every unsafe operation gets
/// its own block and justification); every *other* crate root must carry
/// `#![forbid(unsafe_code)]`.
pub const UNSAFE_CRATES: &[&str] = &["tensor", "parallel", "mpc", "gpu-sim"];

/// Modules sanctioned to construct `Mt19937` generators. Protocol share
/// masking must draw from the engine's seed-derived generator (replay
/// identity depends on it), so minting fresh generators is confined to:
/// the RNG's home crate (`parallel`, including the paper's per-thread
/// generators), triple provisioning (`mpc::triple`, counter-derived
/// streams), and dataset synthesis (`datasets`). Everything else obtains
/// a generator through `psml_parallel::protocol_rng` /
/// `psml_parallel::derived_rng`.
pub const RNG_MODULES: &[&str] = &["parallel::*", "mpc::triple", "datasets::*"];

/// `Mt19937` associated functions that create a generator.
pub const RNG_CONSTRUCTORS: &[&str] = &["new", "from_key", "from_stream", "default"];

/// The fault-injection RNG type. It exists so chaos decisions never
/// perturb the protocol's Mt19937 streams; protocol code referencing it
/// would couple the two randomness domains.
pub const FAULT_RNG_IDENT: &str = "SplitMix64";

/// The only module that may name the fault RNG.
pub const FAULT_RNG_MODULES: &[&str] = &["net-sim::fault"];

/// The fault-injection driver; only the delivery layer (`net-sim`) may
/// touch it. Protocol and engine code see faults solely as the typed
/// errors the endpoint surfaces.
pub const FAULT_INJECTOR_IDENT: &str = "FaultInjector";

/// Modules that may reference [`FAULT_INJECTOR_IDENT`].
pub const FAULT_INJECTOR_MODULES: &[&str] = &["net-sim::*"];

/// Types whose values are secret shares or masked material. Formatting
/// one (debug or display) leaks limb values into logs, traces, or panic
/// messages. Extended in-source by marking a type with
/// `#[doc = "psml-secret"]`.
pub const SECRET_TYPES: &[&str] = &[
    "SharePair",
    "TripleShare",
    "BeaverTriple",
    "DistTriple",
    "SharedMatrix",
    "QuantPackedB",
];

/// Doc-attribute marker that adds a type to the secret registry.
pub const SECRET_MARKER: &str = "psml-secret";

/// Modules that may hand-implement `Debug` for a secret type — the
/// redacting impls themselves (shape + ring, never limbs). `derive(Debug)`
/// on a secret type is forbidden everywhere; a derive is never redacting.
pub const REDACTION_MODULES: &[&str] = &[
    "mpc::share",
    "mpc::triple",
    "core::engine",
    "tensor::quant",
    "gpu-sim::opencl",
];

/// Methods on secret values whose results are *metadata*, safe to format:
/// shapes, dimensions, readiness times. `pair.shape()` in an assert is
/// fine; `pair.u` is not.
pub const METADATA_ACCESSORS: &[&str] = &[
    "shape",
    "rows",
    "cols",
    "dims",
    "len",
    "is_empty",
    "ready",
    "spec",
];

/// Macros whose arguments end up in human-readable output.
pub const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "todo",
    "unimplemented",
    "unreachable",
];

/// Protocol-path modules that must stay bit-deterministic: simulated time
/// and replay identity break if they read the wall clock or iterate a
/// randomly-seeded `HashMap`. The trace crate (host-time spans are its
/// job), the bench harness, and `parallel` (the paper's wall-clock
/// thread seeding, outside the protocol's determinism domain) are
/// deliberately absent.
pub const DETERMINISM_MODULES: &[&str] = &[
    "core::engine",
    "core::provider",
    "core::trainer",
    "core::serve",
    "core::adaptive",
    "core::layers",
    "core::models",
    "core::baseline",
    "mpc::*",
    "net-sim::*",
    "simtime::*",
];

/// Carve-outs from [`DETERMINISM_MODULES`]: modules that govern *real*
/// sockets between party processes, where the wall clock is the ground
/// truth (heartbeat liveness deadlines, reconnect backoff, socket
/// timeouts). Everything protocol-visible they carry — frame bytes,
/// sequence numbers, fault verdicts — stays deterministic; only their
/// timing lives outside the simulated-time domain. Scoped narrowly on
/// purpose: a new net-sim module is covered by the rule until it earns
/// a listing here.
pub const DETERMINISM_EXEMPT_MODULES: &[&str] = &[
    "net-sim::supervise",
    "net-sim::tcp",
    "net-sim::proxy",
];

/// Wall-clock types forbidden in [`DETERMINISM_MODULES`].
pub const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Methods that iterate a `HashMap` in arbitrary order. Keyed lookups
/// (`get`, `entry`, `contains_key`) stay allowed.
pub const HASHMAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Struct fields of secret types whose values are *metadata*, not limb
/// material — the field-access twin of [`METADATA_ACCESSORS`]. Reading
/// `pair.rows` is shape information; reading `pair.shares` is the secret.
pub const METADATA_FIELDS: &[&str] = &["rows", "cols", "ring", "party", "seq", "spec"];

/// Declassification points: calling one of these on a secret-derived value
/// is the *sanctioned* transition out of the masked domain (the protocol's
/// reveal step — reconstructing public `E`/`F`, decoding a merged output).
/// Taint does not propagate through their results. A new reveal surface
/// must be added here deliberately, which is exactly the review moment the
/// analyzer exists to force.
pub const DECLASSIFY_CALLS: &[&str] = &[
    "reconstruct",
    "reconstruct_ring",
    "reconstruct_public",
    "decode",
    "decode_matrix",
    "reveal",
    "reveal_insecure",
];

/// Online-path modules that must stay data-oblivious: the paper's Sec. 4
/// triplet protocol assumes servers whose control flow is independent of
/// secret values, so an `if`/`match`/short-circuit/index conditioned on
/// secret-derived data is a timing side channel. Suppressible per-site
/// with `// psml-lint: allow(timing, "why this value is public")`.
pub const TIMING_MODULES: &[&str] = &["mpc::*", "core::engine"];

/// Modules whose lock usage the concurrency rules audit: the thread-pool
/// job queue, the triple-provider prefetch queue, and the TCP supervisor's
/// shared writer table — the three places our threads actually interleave.
pub const CONCURRENCY_MODULES: &[&str] = &[
    "parallel::pool",
    "core::provider",
    "net-sim::supervise",
];

/// Lock-acquisition methods (`Mutex::lock`, `RwLock::read`/`write`).
pub const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Method names that collide with the std prelude (`str::split`,
/// `Mutex::lock`, `Iterator::map`, ...). The call graph's receiver-blind
/// fallback — "exactly one workspace type defines this method" — must
/// never fire for these: `args.split(' ')` on a `&str` is not the MPC
/// crate's share-splitting `split`, even if the latter is the only
/// workspace definition of the name.
pub const STD_METHODS: &[&str] = &[
    "clear", "clone", "contains", "drain", "extend", "filter", "find",
    "first", "get", "insert", "is_empty", "iter", "join", "last", "len",
    "lock", "map", "new", "next", "parse", "pop", "push", "read", "recv",
    "remove", "send", "split", "take", "write",
];

/// Import-prefix to lint-crate-name mapping for cross-crate `use`
/// resolution (package names use `psml_` prefixes and underscores; the
/// analyzer's crate identities are the `crates/` directory names).
pub const CRATE_PREFIXES: &[(&str, &str)] = &[
    ("psml_tensor", "tensor"),
    ("psml_parallel", "parallel"),
    ("psml_mpc", "mpc"),
    ("psml_net", "net-sim"),
    ("psml_gpu", "gpu-sim"),
    ("psml_trace", "trace"),
    ("psml_simtime", "simtime"),
    ("psml_datasets", "datasets"),
    ("psml_lint", "lint"),
    ("psml_bench", "bench"),
    ("parsecureml", "core"),
];

//! Finding and report types, human rendering, and the versioned
//! `psml.lint.v2` JSON document (v1 stays accepted by `psml validate`;
//! v2 adds per-finding fingerprints and inter-procedural evidence
//! chains).

use crate::json::{obj, Json};
use std::collections::BTreeMap;

/// Every rule the analyzer enforces. The string id (`family.name`) is the
/// stable external identity — it appears in human diagnostics, the JSON
/// document, and fixture expectations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RuleId {
    /// `unsafe` block/impl/trait/fn without a `SAFETY:` / `# Safety`
    /// justification.
    UnsafeMissingSafety,
    /// `unsafe` outside the allowlisted modules.
    UnsafeOutsideAllowlist,
    /// Crate root missing its unsafe policy attribute
    /// (`forbid(unsafe_code)` or `deny(unsafe_op_in_unsafe_fn)`).
    UnsafeCratePolicy,
    /// `Mt19937` constructed outside the sanctioned modules.
    RngConstruction,
    /// Protocol code referencing the fault RNG / injector.
    FaultRngReference,
    /// `derive(Debug)` on a secret type.
    SecretDebugDerive,
    /// Hand-written `Debug`/`Display` for a secret type outside the
    /// redaction modules.
    SecretDebugImpl,
    /// Secret value reaching a format macro or trace sink.
    SecretFormatLeak,
    /// Secret value crossing a function boundary before reaching a
    /// format sink — the inter-procedural flow v1's file-granular taint
    /// cannot see. Carries the call chain as evidence.
    SecretCrossFunctionLeak,
    /// `if`/`while`/`match` or short-circuit operator conditioned on a
    /// secret-derived value in an online-path module.
    TimingBranchOnSecret,
    /// Array/slice index computed from a secret-derived value in an
    /// online-path module (data-dependent memory access).
    TimingSecretIndex,
    /// `psml-lint: allow(timing, ...)` suppression without a non-empty
    /// justification string.
    TimingAllowUnjustified,
    /// Two locks acquired in opposite orders on different code paths.
    ConcurrencyLockOrder,
    /// Blocking channel `recv()` while holding a lock guard.
    ConcurrencyRecvUnderLock,
    /// Wall-clock type in a determinism-critical module.
    WallClock,
    /// `HashMap` iteration in a determinism-critical module.
    HashMapIteration,
}

impl RuleId {
    /// All rules, in catalog order.
    pub const ALL: [RuleId; 16] = [
        RuleId::UnsafeMissingSafety,
        RuleId::UnsafeOutsideAllowlist,
        RuleId::UnsafeCratePolicy,
        RuleId::RngConstruction,
        RuleId::FaultRngReference,
        RuleId::SecretDebugDerive,
        RuleId::SecretDebugImpl,
        RuleId::SecretFormatLeak,
        RuleId::SecretCrossFunctionLeak,
        RuleId::TimingBranchOnSecret,
        RuleId::TimingSecretIndex,
        RuleId::TimingAllowUnjustified,
        RuleId::ConcurrencyLockOrder,
        RuleId::ConcurrencyRecvUnderLock,
        RuleId::WallClock,
        RuleId::HashMapIteration,
    ];

    /// All rule families, in catalog order.
    pub const FAMILIES: [&'static str; 6] =
        ["unsafe", "rng", "secrecy", "timing", "concurrency", "determinism"];

    /// Stable `family.name` identifier.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnsafeMissingSafety => "unsafe.missing-safety-comment",
            RuleId::UnsafeOutsideAllowlist => "unsafe.module-not-allowlisted",
            RuleId::UnsafeCratePolicy => "unsafe.missing-crate-policy",
            RuleId::RngConstruction => "rng.construction-not-sanctioned",
            RuleId::FaultRngReference => "rng.fault-rng-reference",
            RuleId::SecretDebugDerive => "secrecy.debug-derive",
            RuleId::SecretDebugImpl => "secrecy.debug-impl-outside-redaction",
            RuleId::SecretFormatLeak => "secrecy.format-leak",
            RuleId::SecretCrossFunctionLeak => "secrecy.cross-function-leak",
            RuleId::TimingBranchOnSecret => "timing.branch-on-secret",
            RuleId::TimingSecretIndex => "timing.secret-index",
            RuleId::TimingAllowUnjustified => "timing.allow-unjustified",
            RuleId::ConcurrencyLockOrder => "concurrency.lock-order-inversion",
            RuleId::ConcurrencyRecvUnderLock => "concurrency.recv-under-lock",
            RuleId::WallClock => "determinism.wall-clock",
            RuleId::HashMapIteration => "determinism.hashmap-iteration",
        }
    }

    /// Rule family (one of [`RuleId::FAMILIES`]).
    pub fn family(self) -> &'static str {
        self.id().split('.').next().unwrap()
    }

    /// One-line description for the catalog.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::UnsafeMissingSafety => {
                "every unsafe block/impl/trait/fn carries a SAFETY: or # Safety justification"
            }
            RuleId::UnsafeOutsideAllowlist => {
                "unsafe code is confined to the vetted kernel/pool/ring-carrier modules"
            }
            RuleId::UnsafeCratePolicy => {
                "crate roots declare forbid(unsafe_code), or deny(unsafe_op_in_unsafe_fn) where unsafe is allowlisted"
            }
            RuleId::RngConstruction => {
                "Mt19937 generators are minted only by provisioning/dataset/RNG-home modules"
            }
            RuleId::FaultRngReference => {
                "protocol code never touches the fault-injection RNG or injector"
            }
            RuleId::SecretDebugDerive => {
                "secret share types never derive Debug (a derive is never redacting)"
            }
            RuleId::SecretDebugImpl => {
                "manual Debug for secret types lives only in the redaction modules"
            }
            RuleId::SecretFormatLeak => {
                "secret values never reach format macros or trace sinks (metadata accessors exempt)"
            }
            RuleId::SecretCrossFunctionLeak => {
                "secrecy follows calls: values that cross a function boundary stay secret until declassified"
            }
            RuleId::TimingBranchOnSecret => {
                "online-path control flow never depends on secret-derived values (data-oblivious servers)"
            }
            RuleId::TimingSecretIndex => {
                "online-path memory access patterns never depend on secret-derived indices"
            }
            RuleId::TimingAllowUnjustified => {
                "every allow(timing) suppression carries a non-empty justification string"
            }
            RuleId::ConcurrencyLockOrder => {
                "locks shared between threads are acquired in one global order"
            }
            RuleId::ConcurrencyRecvUnderLock => {
                "no blocking channel recv while holding a lock guard"
            }
            RuleId::WallClock => {
                "protocol paths never read Instant/SystemTime (simulated time only)"
            }
            RuleId::HashMapIteration => {
                "protocol paths never iterate HashMaps (arbitrary order breaks replay identity)"
            }
        }
    }

    /// Parses a stable id back to the rule.
    pub fn from_id(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == s)
    }
}

/// One step of an inter-procedural evidence chain: where taint entered,
/// each call it flowed through, and the sink it reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evidence {
    /// Root-relative file path of this step.
    pub file: String,
    /// 1-based line of this step.
    pub line: u32,
    /// What happened at this step ("secret parameter `p`", "returned by
    /// `first_limb`", ...).
    pub note: String,
}

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Violated rule.
    pub rule: RuleId,
    /// Root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human message with the specifics.
    pub message: String,
    /// Trimmed source text of the offending line, used for the stable
    /// fingerprint (empty when the source is unavailable, e.g. synthetic
    /// crate-policy findings).
    pub snippet: String,
    /// Inter-procedural provenance chain; empty for single-site rules.
    pub evidence: Vec<Evidence>,
    /// Stable content hash assigned by [`Report::sort`]: survives line
    /// drift from unrelated edits, so a future baseline file can track
    /// accepted findings across rebases.
    pub fingerprint: String,
}

impl Finding {
    /// A finding with no evidence chain; fingerprint assigned at report
    /// assembly.
    pub fn new(rule: RuleId, file: &str, line: u32, message: String, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            snippet: snippet.trim().to_string(),
            evidence: Vec::new(),
            fingerprint: String::new(),
        }
    }

    /// `file:line: [rule] message` diagnostic line, with the evidence
    /// chain indented beneath it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        );
        for step in &self.evidence {
            out.push_str(&format!("\n    {}:{}: {}", step.file, step.line, step.note));
        }
        out
    }
}

/// 64-bit FNV-1a over the finding's stable content.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Full analyzer output for one workspace scan.
pub struct Report {
    /// Workspace root the scan ran over.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings into the canonical (file, line, rule) order and
    /// assigns fingerprints. The hash covers rule + path + trimmed line
    /// text + same-content ordinal — not the line number — so a finding
    /// keeps its identity when unrelated edits shift it, yet duplicate
    /// occurrences of identical text stay distinct.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
        let mut ordinals: BTreeMap<String, u32> = BTreeMap::new();
        for f in &mut self.findings {
            let key = format!("{}|{}|{}", f.rule.id(), f.file, f.snippet);
            let ord = ordinals.entry(key.clone()).or_insert(0);
            f.fingerprint = format!("{:016x}", fnv1a64(&format!("{key}|{ord}")));
            *ord += 1;
        }
    }

    /// Findings grouped per family, in family order.
    pub fn by_family(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule.family()).or_insert(0) += 1;
        }
        map
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str(&format!(
                "psml-lint: {} files clean ({} rules)\n",
                self.files_scanned,
                RuleId::ALL.len()
            ));
        } else {
            let fam: Vec<String> = self
                .by_family()
                .into_iter()
                .map(|(k, v)| format!("{k}: {v}"))
                .collect();
            out.push_str(&format!(
                "psml-lint: {} finding(s) in {} files ({})\n",
                self.findings.len(),
                self.files_scanned,
                fam.join(", ")
            ));
        }
        out
    }

    /// The versioned `psml.lint.v2` document. Same top-level shape as
    /// v1 (so `psml validate`'s key list carries over), plus a
    /// `fingerprint` and `evidence` array on every finding.
    pub fn to_json(&self) -> String {
        let rules = RuleId::ALL
            .into_iter()
            .map(|r| {
                obj([
                    ("id", Json::Str(r.id().into())),
                    ("family", Json::Str(r.family().into())),
                    ("description", Json::Str(r.description().into())),
                ])
            })
            .collect();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let evidence = f
                    .evidence
                    .iter()
                    .map(|e| {
                        obj([
                            ("file", Json::Str(e.file.clone())),
                            ("line", Json::UInt(e.line as u64)),
                            ("note", Json::Str(e.note.clone())),
                        ])
                    })
                    .collect();
                obj([
                    ("rule", Json::Str(f.rule.id().into())),
                    ("file", Json::Str(f.file.clone())),
                    ("line", Json::UInt(f.line as u64)),
                    ("message", Json::Str(f.message.clone())),
                    ("fingerprint", Json::Str(f.fingerprint.clone())),
                    ("evidence", Json::Array(evidence)),
                ])
            })
            .collect();
        let by_family = self
            .by_family()
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::UInt(v as u64)))
            .collect();
        obj([
            ("schema", Json::Str("psml.lint.v2".into())),
            ("tool", Json::Str("psml-lint".into())),
            ("root", Json::Str(self.root.clone())),
            ("files_scanned", Json::UInt(self.files_scanned as u64)),
            ("rules", Json::Array(rules)),
            ("findings", Json::Array(findings)),
            (
                "summary",
                Json::Object(vec![
                    (
                        "total".to_string(),
                        Json::UInt(self.findings.len() as u64),
                    ),
                    ("clean".to_string(), Json::Bool(self.findings.is_empty())),
                    ("by_family".to_string(), Json::Object(by_family)),
                ]),
            ),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_families_partition() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RuleId::ALL {
            assert!(seen.insert(r.id()), "duplicate id {}", r.id());
            assert!(
                RuleId::FAMILIES.contains(&r.family()),
                "unknown family {}",
                r.family()
            );
            assert_eq!(RuleId::from_id(r.id()), Some(r));
        }
        // Every declared family has at least one rule.
        for fam in RuleId::FAMILIES {
            assert!(
                RuleId::ALL.iter().any(|r| r.family() == fam),
                "empty family {fam}"
            );
        }
    }

    #[test]
    fn document_shape_is_stable() {
        let mut rep = Report {
            root: ".".into(),
            files_scanned: 2,
            findings: vec![Finding::new(
                RuleId::WallClock,
                "b.rs",
                3,
                "Instant".into(),
                "let t = Instant::now();",
            )],
        };
        rep.sort();
        let json = rep.to_json();
        assert!(json.starts_with("{\"schema\":\"psml.lint.v2\""));
        for key in [
            "\"tool\"",
            "\"files_scanned\"",
            "\"rules\"",
            "\"findings\"",
            "\"summary\"",
            "\"fingerprint\"",
            "\"evidence\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"determinism\":1"));
    }

    #[test]
    fn fingerprints_survive_line_drift_but_separate_duplicates() {
        let mk = |line: u32, snippet: &str| {
            Finding::new(RuleId::WallClock, "a.rs", line, "m".into(), snippet)
        };
        let mut rep = Report {
            root: ".".into(),
            files_scanned: 1,
            findings: vec![mk(3, "Instant::now();"), mk(9, "Instant::now();")],
        };
        rep.sort();
        let fp_before: Vec<String> =
            rep.findings.iter().map(|f| f.fingerprint.clone()).collect();
        assert_ne!(fp_before[0], fp_before[1], "duplicates get distinct ordinals");

        // Shift both findings down four lines (an unrelated edit above):
        // the fingerprints are unchanged.
        let mut drifted = Report {
            root: ".".into(),
            files_scanned: 1,
            findings: vec![mk(7, "Instant::now();"), mk(13, "Instant::now();")],
        };
        drifted.sort();
        let fp_after: Vec<String> =
            drifted.findings.iter().map(|f| f.fingerprint.clone()).collect();
        assert_eq!(fp_before, fp_after);
    }

    #[test]
    fn evidence_chain_renders_indented() {
        let mut f = Finding::new(
            RuleId::SecretCrossFunctionLeak,
            "serve.rs",
            10,
            "limb leak".into(),
            "println!(\"{l}\");",
        );
        f.evidence.push(Evidence {
            file: "share.rs".into(),
            line: 4,
            note: "secret parameter `p`".into(),
        });
        let text = f.render();
        assert!(text.contains("[secrecy.cross-function-leak]"));
        assert!(text.contains("\n    share.rs:4: secret parameter `p`"));
    }
}

//! Finding and report types, human rendering, and the versioned
//! `psml.lint.v1` JSON document.

use crate::json::{obj, Json};
use std::collections::BTreeMap;

/// Every rule the analyzer enforces. The string id (`family.name`) is the
/// stable external identity — it appears in human diagnostics, the JSON
/// document, and fixture expectations.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum RuleId {
    /// `unsafe` block/impl/trait/fn without a `SAFETY:` / `# Safety`
    /// justification.
    UnsafeMissingSafety,
    /// `unsafe` outside the allowlisted modules.
    UnsafeOutsideAllowlist,
    /// Crate root missing its unsafe policy attribute
    /// (`forbid(unsafe_code)` or `deny(unsafe_op_in_unsafe_fn)`).
    UnsafeCratePolicy,
    /// `Mt19937` constructed outside the sanctioned modules.
    RngConstruction,
    /// Protocol code referencing the fault RNG / injector.
    FaultRngReference,
    /// `derive(Debug)` on a secret type.
    SecretDebugDerive,
    /// Hand-written `Debug`/`Display` for a secret type outside the
    /// redaction modules.
    SecretDebugImpl,
    /// Secret value reaching a format macro or trace sink.
    SecretFormatLeak,
    /// Wall-clock type in a determinism-critical module.
    WallClock,
    /// `HashMap` iteration in a determinism-critical module.
    HashMapIteration,
}

impl RuleId {
    /// All rules, in catalog order.
    pub const ALL: [RuleId; 10] = [
        RuleId::UnsafeMissingSafety,
        RuleId::UnsafeOutsideAllowlist,
        RuleId::UnsafeCratePolicy,
        RuleId::RngConstruction,
        RuleId::FaultRngReference,
        RuleId::SecretDebugDerive,
        RuleId::SecretDebugImpl,
        RuleId::SecretFormatLeak,
        RuleId::WallClock,
        RuleId::HashMapIteration,
    ];

    /// Stable `family.name` identifier.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnsafeMissingSafety => "unsafe.missing-safety-comment",
            RuleId::UnsafeOutsideAllowlist => "unsafe.module-not-allowlisted",
            RuleId::UnsafeCratePolicy => "unsafe.missing-crate-policy",
            RuleId::RngConstruction => "rng.construction-not-sanctioned",
            RuleId::FaultRngReference => "rng.fault-rng-reference",
            RuleId::SecretDebugDerive => "secrecy.debug-derive",
            RuleId::SecretDebugImpl => "secrecy.debug-impl-outside-redaction",
            RuleId::SecretFormatLeak => "secrecy.format-leak",
            RuleId::WallClock => "determinism.wall-clock",
            RuleId::HashMapIteration => "determinism.hashmap-iteration",
        }
    }

    /// Rule family (`unsafe`, `rng`, `secrecy`, `determinism`).
    pub fn family(self) -> &'static str {
        self.id().split('.').next().unwrap()
    }

    /// One-line description for the catalog.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::UnsafeMissingSafety => {
                "every unsafe block/impl/trait/fn carries a SAFETY: or # Safety justification"
            }
            RuleId::UnsafeOutsideAllowlist => {
                "unsafe code is confined to the vetted kernel/pool/ring-carrier modules"
            }
            RuleId::UnsafeCratePolicy => {
                "crate roots declare forbid(unsafe_code), or deny(unsafe_op_in_unsafe_fn) where unsafe is allowlisted"
            }
            RuleId::RngConstruction => {
                "Mt19937 generators are minted only by provisioning/dataset/RNG-home modules"
            }
            RuleId::FaultRngReference => {
                "protocol code never touches the fault-injection RNG or injector"
            }
            RuleId::SecretDebugDerive => {
                "secret share types never derive Debug (a derive is never redacting)"
            }
            RuleId::SecretDebugImpl => {
                "manual Debug for secret types lives only in the redaction modules"
            }
            RuleId::SecretFormatLeak => {
                "secret values never reach format macros or trace sinks (metadata accessors exempt)"
            }
            RuleId::WallClock => {
                "protocol paths never read Instant/SystemTime (simulated time only)"
            }
            RuleId::HashMapIteration => {
                "protocol paths never iterate HashMaps (arbitrary order breaks replay identity)"
            }
        }
    }

    /// Parses a stable id back to the rule.
    pub fn from_id(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.id() == s)
    }
}

/// One violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Violated rule.
    pub rule: RuleId,
    /// Root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human message with the specifics.
    pub message: String,
}

impl Finding {
    /// `file:line: [rule] message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Full analyzer output for one workspace scan.
pub struct Report {
    /// Workspace root the scan ran over.
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings into the canonical (file, line, rule) order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Findings grouped per family, in family order.
    pub fn by_family(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for f in &self.findings {
            *map.entry(f.rule.family()).or_insert(0) += 1;
        }
        map
    }

    /// Human-readable rendering: one line per finding plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str(&format!(
                "psml-lint: {} files clean ({} rules)\n",
                self.files_scanned,
                RuleId::ALL.len()
            ));
        } else {
            let fam: Vec<String> = self
                .by_family()
                .into_iter()
                .map(|(k, v)| format!("{k}: {v}"))
                .collect();
            out.push_str(&format!(
                "psml-lint: {} finding(s) in {} files ({})\n",
                self.findings.len(),
                self.files_scanned,
                fam.join(", ")
            ));
        }
        out
    }

    /// The versioned `psml.lint.v1` document.
    pub fn to_json(&self) -> String {
        let rules = RuleId::ALL
            .into_iter()
            .map(|r| {
                obj([
                    ("id", Json::Str(r.id().into())),
                    ("family", Json::Str(r.family().into())),
                    ("description", Json::Str(r.description().into())),
                ])
            })
            .collect();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                obj([
                    ("rule", Json::Str(f.rule.id().into())),
                    ("file", Json::Str(f.file.clone())),
                    ("line", Json::UInt(f.line as u64)),
                    ("message", Json::Str(f.message.clone())),
                ])
            })
            .collect();
        let by_family = self
            .by_family()
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::UInt(v as u64)))
            .collect();
        obj([
            ("schema", Json::Str("psml.lint.v1".into())),
            ("tool", Json::Str("psml-lint".into())),
            ("root", Json::Str(self.root.clone())),
            ("files_scanned", Json::UInt(self.files_scanned as u64)),
            ("rules", Json::Array(rules)),
            ("findings", Json::Array(findings)),
            (
                "summary",
                Json::Object(vec![
                    (
                        "total".to_string(),
                        Json::UInt(self.findings.len() as u64),
                    ),
                    ("clean".to_string(), Json::Bool(self.findings.is_empty())),
                    ("by_family".to_string(), Json::Object(by_family)),
                ]),
            ),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_families_partition() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RuleId::ALL {
            assert!(seen.insert(r.id()), "duplicate id {}", r.id());
            assert!(
                ["unsafe", "rng", "secrecy", "determinism"].contains(&r.family()),
                "unknown family {}",
                r.family()
            );
            assert_eq!(RuleId::from_id(r.id()), Some(r));
        }
    }

    #[test]
    fn document_shape_is_stable() {
        let mut rep = Report {
            root: ".".into(),
            files_scanned: 2,
            findings: vec![Finding {
                rule: RuleId::WallClock,
                file: "b.rs".into(),
                line: 3,
                message: "Instant".into(),
            }],
        };
        rep.sort();
        let json = rep.to_json();
        assert!(json.starts_with("{\"schema\":\"psml.lint.v1\""));
        for key in ["\"tool\"", "\"files_scanned\"", "\"rules\"", "\"findings\"", "\"summary\""] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"determinism\":1"));
    }
}

#![forbid(unsafe_code)]
//! # psml-lint
//!
//! Dependency-free static analyzer for the ParSecureML workspace. The
//! protocol's correctness rests on invariants no compiler checks — secret
//! shares are only safe while masked, simulated time and MT19937 stream
//! derivation must stay bit-deterministic for prefetch/replay identity,
//! and the AVX kernel path leans on `unsafe` pointer casts. This crate
//! turns those invariants into a machine-enforced gate (wired into
//! `scripts/ci.sh` and a tier-1 integration test) instead of reviewer
//! vigilance.
//!
//! Six rule families (see [`findings::RuleId`] for the catalog):
//!
//! 1. **unsafe hygiene** — every `unsafe` carries a `SAFETY:` /
//!    `# Safety` justification, `unsafe` only in allowlisted modules,
//!    crate roots declare their unsafe policy attribute;
//! 2. **RNG discipline** — `Mt19937` minted only in sanctioned modules,
//!    fault RNG never referenced from protocol code;
//! 3. **secrecy** — registered secret types (plus `#[doc = "psml-secret"]`
//!    marked ones) never derive `Debug`, are hand-Debug'd only in the
//!    redaction modules, and never reach format macros or trace sinks —
//!    including across function boundaries, via the inter-procedural
//!    taint pass ([`taint`]);
//! 4. **timing** — online-path control flow and memory access never
//!    depend on secret-derived values ([`timing`]);
//! 5. **concurrency** — one global lock-acquisition order, no blocking
//!    channel `recv` under a lock ([`concurrency`]);
//! 6. **determinism** — no wall-clock types and no `HashMap` iteration in
//!    protocol-path modules.
//!
//! The analyzer is a hand-rolled lexer ([`lexer`]), token-pattern rules
//! ([`rules`]), and a workspace symbol table + call graph ([`symbols`],
//! [`callgraph`]) feeding the dataflow passes — no `syn`, no `serde`, no
//! dependencies at all, so it builds and runs even when the crates it
//! scans do not. Findings are emitted as human diagnostics and as a
//! versioned `psml.lint.v2` JSON document that `psml validate` accepts
//! (v1 documents stay accepted too).

pub mod callgraph;
pub mod concurrency;
pub mod config;
pub mod findings;
pub mod json;
pub mod lexer;
#[cfg(test)]
mod proptests;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod taint;
pub mod timing;
pub mod workspace;

pub use findings::{Evidence, Finding, Report, RuleId};
pub use rules::SecretRegistry;
pub use source::{Context, SourceFile};
pub use workspace::{lint_sources, lint_workspace};

/// Lints a single in-memory file under the given identity with the
/// per-file rules only — v1 semantics, kept as the regression baseline
/// that the cross-function fixture provably escapes.
pub fn lint_str(
    path: &str,
    crate_name: &str,
    module: &str,
    context: Context,
    text: &str,
) -> Vec<Finding> {
    let f = SourceFile::parse(path, crate_name, module, context, text);
    let mut secrets = SecretRegistry::default();
    secrets.collect(&f);
    rules::lint_file(&f, &secrets)
}

/// Lints a single in-memory file through the *full* pipeline — per-file
/// rules plus symbol table, call graph, taint, timing, and concurrency —
/// the fixture tests' entry point for the inter-procedural families.
pub fn lint_str_full(
    path: &str,
    crate_name: &str,
    module: &str,
    context: Context,
    text: &str,
) -> Vec<Finding> {
    let f = SourceFile::parse(path, crate_name, module, context, text);
    let report = lint_sources(std::path::Path::new("."), vec![f]);
    report.findings
}

//! Minimal JSON writer for the `psml.lint.v1` document.
//!
//! `psml-trace` already has a JSON module, but this crate is deliberately
//! dependency-free — the analyzer must stay buildable and runnable even
//! when the crates it scans don't compile — so it carries its own ~80-line
//! writer. Emission order is the insertion order of the object pairs,
//! which keeps documents byte-stable across runs.

/// A JSON value.
pub enum Json {
    /// String.
    Str(String),
    /// Unsigned integer.
    UInt(u64),
    /// Boolean.
    Bool(bool),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

/// Builds an object from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Json {
    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Str(s) => write_escaped(s, out),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let doc = obj([
            ("a", Json::Str("x\"y\\z\n".into())),
            ("n", Json::UInt(7)),
            (
                "arr",
                Json::Array(vec![Json::Bool(true), Json::Str("é".into())]),
            ),
        ]);
        assert_eq!(
            doc.to_json(),
            "{\"a\":\"x\\\"y\\\\z\\n\",\"n\":7,\"arr\":[true,\"é\"]}"
        );
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        assert_eq!(Json::Str("\u{1}".into()).to_json(), "\"\\u0001\"");
    }
}

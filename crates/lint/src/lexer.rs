//! Hand-rolled Rust token scanner.
//!
//! `psml-lint` must stay std-only (the workspace builds fully offline), so
//! instead of `syn` it carries this small lexer: good enough to separate
//! identifiers, punctuation, literals, and comments, with line numbers —
//! exactly what the token-pattern rules in [`crate::rules`] need. It is
//! *not* a parser: it never builds a syntax tree, and it deliberately
//! ignores distinctions the rules don't use (e.g. numeric literal shapes).
//!
//! Guarantees the rules rely on:
//!
//! - comments (line, block, doc) never appear in the token stream — they
//!   are collected separately with their line spans, so `unsafe` in prose
//!   can't trip the hygiene rule;
//! - string/char literal *contents* never appear as tokens (a log message
//!   mentioning `Mt19937` is not a construction site); raw strings,
//!   byte strings, and nested block comments are handled;
//! - lifetimes are distinguished from char literals, so `'a` does not eat
//!   the rest of the file.

/// What a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (including `unsafe`, `impl`, ...).
    Ident,
    /// One punctuation byte (`::` arrives as two `:` tokens).
    Punct,
    /// String literal (text holds the *contents*, escapes unprocessed).
    Str,
    /// Char or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, text holds the name without the quote).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of the token.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what each kind stores).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment with its line span.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (differs for block comments).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Token stream plus the comments that were stripped out of it.
#[derive(Default, Debug)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unrecognized bytes
/// become single-byte punctuation, and unterminated literals run to EOF —
/// for a linter, a degraded scan of a malformed file beats an abort.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_cont(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => self.raw_prefixed(),
                b'b' if self.peek(1) == b'"' => {
                    self.i += 1;
                    self.string();
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.i += 1;
                    self.char_lit();
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    self.i += 1;
                    self.raw_prefixed();
                }
                b'\'' => self.quote(),
                _ if is_ident_start(c) => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.out.toks.push(Tok {
                        kind: TokKind::Punct,
                        text: (c as char).to_string(),
                        line: self.line,
                    });
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => self.line += 1,
                b'/' if self.peek(1) == b'*' => {
                    depth += 1;
                    self.i += 1;
                }
                b'*' if self.peek(1) == b'/' => {
                    depth -= 1;
                    self.i += 1;
                }
                _ => {}
            }
            self.i += 1;
        }
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
        });
    }

    fn string(&mut self) {
        let line = self.line;
        self.i += 1; // opening quote
        let start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    // An escaped newline (line continuation) still ends a
                    // source line — skipping it blind desyncs every token
                    // line after the literal.
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => break,
                _ => self.i += 1,
            }
        }
        let end = self.i.min(self.b.len());
        self.i = end + 1; // closing quote
        self.out.toks.push(Tok {
            kind: TokKind::Str,
            text: String::from_utf8_lossy(&self.b[start..end]).into_owned(),
            line,
        });
    }

    /// `r"..."`, `r#"..."#`, ..., or a raw identifier `r#ident`.
    fn raw_prefixed(&mut self) {
        let line = self.line;
        let mut j = self.i + 1;
        let mut hashes = 0usize;
        while j < self.b.len() && self.b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < self.b.len() && self.b[j] == b'"' {
            // Raw string: scan for `"` followed by `hashes` hashes.
            self.i = j + 1;
            let start = self.i;
            let end;
            loop {
                if self.i >= self.b.len() {
                    end = self.b.len();
                    break;
                }
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                } else if self.b[self.i] == b'"'
                    && self.b[self.i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count()
                        == hashes
                {
                    end = self.i;
                    self.i += 1 + hashes;
                    break;
                }
                self.i += 1;
            }
            self.out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::from_utf8_lossy(&self.b[start..end]).into_owned(),
                line,
            });
        } else if hashes == 1 && j < self.b.len() && is_ident_start(self.b[j]) {
            // Raw identifier: emit without the `r#` so rules see the name.
            self.i = j;
            self.ident();
        } else {
            // Plain identifier starting with `r`.
            self.ident();
        }
    }

    fn char_lit(&mut self) {
        let line = self.line;
        self.i += 1; // opening quote
        let start = self.i;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => {
                    if self.peek(1) == b'\n' {
                        self.line += 1;
                    }
                    self.i += 2;
                }
                b'\'' => break,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        let end = self.i.min(self.b.len());
        self.i = end + 1;
        self.out.toks.push(Tok {
            kind: TokKind::Char,
            text: String::from_utf8_lossy(&self.b[start..end]).into_owned(),
            line,
        });
    }

    /// Disambiguates a lifetime from a char literal at a `'`.
    fn quote(&mut self) {
        // `'a`, `'static`, `'_` — lifetime iff the ident run is not closed
        // by another quote (which would make it a char literal like 'x').
        if is_ident_start(self.peek(1)) {
            let mut j = self.i + 1;
            while j < self.b.len() && is_ident_cont(self.b[j]) {
                j += 1;
            }
            if self.b.get(j) != Some(&b'\'') {
                let text = String::from_utf8_lossy(&self.b[self.i + 1..j]).into_owned();
                self.out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: self.line,
                });
                self.i = j;
                return;
            }
        }
        self.char_lit();
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
            self.i += 1;
        }
        self.out.toks.push(Tok {
            kind: TokKind::Ident,
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
            line: self.line,
        });
    }

    fn number(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
            self.i += 1;
        }
        // Fractional part — but never eat `..` (range syntax).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
                self.i += 1;
            }
        }
        self.out.toks.push(Tok {
            kind: TokKind::Num,
            text: String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
            line: self.line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_stripped_and_recorded() {
        let l = lex("// unsafe in prose\nlet x = 1; /* Mt19937::new */ y");
        assert!(l.toks.iter().all(|t| t.text != "unsafe" && t.text != "Mt19937"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].text.contains("Mt19937"));
    }

    #[test]
    fn nested_block_comments_and_line_counting() {
        let l = lex("/* a /* b\n */ c\n*/ token");
        assert_eq!(l.comments.len(), 1);
        assert_eq!((l.comments[0].line, l.comments[0].end_line), (1, 3));
        assert_eq!(l.toks.len(), 1);
        assert_eq!(l.toks[0].line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = texts(r#"let s = "unsafe { Instant }"; b"x"; 'u'; "#);
        assert!(t.iter().all(|(_, s)| s != "unsafe" && s != "Instant"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let t = texts(r##"r#"quote " inside"# r#struct x"##);
        assert_eq!(t[0], (TokKind::Str, "quote \" inside".into()));
        assert_eq!(t[1], (TokKind::Ident, "struct".into()));
        assert_eq!(t[2], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "x"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "\\n"));
    }

    #[test]
    fn ranges_are_not_floats() {
        let t = texts("for i in 0..10 { let f = 1.5e3; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "0"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "10"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "1.5e3"));
    }

    #[test]
    fn double_colon_is_two_puncts() {
        let t = texts("Mt19937::new(7)");
        let kinds: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(kinds, ["Mt19937", ":", ":", "new", "(", "7", ")"]);
    }

    #[test]
    fn lines_are_one_based_and_accurate() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}

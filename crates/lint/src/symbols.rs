//! Workspace symbol table: every `fn` definition (free functions and
//! inherent/trait methods with their receiver type), struct fields, and
//! the per-file `use` import map. Built by one token walk per file on top
//! of the existing lexer — no syn, no rustc, keeping the crate's
//! zero-dependency guarantee. The call graph ([`crate::callgraph`]) and
//! the inter-procedural passes resolve names against this table.

use crate::config::CRATE_PREFIXES;
use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One declared parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`self` for receivers; empty for pattern params the
    /// token walk cannot name).
    pub name: String,
    /// Declared type, as token texts (`&`, `mut`, lifetimes stripped at
    /// the front; the receiver's type is the impl target).
    pub ty: Vec<String>,
}

/// One `fn` definition.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index into the scanned source list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Receiver type when defined inside `impl Type` / `impl Trait for
    /// Type`.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared parameters in order.
    pub params: Vec<Param>,
    /// Return-type tokens (empty for `()` / no arrow).
    pub ret: Vec<String>,
    /// Token-index range of the body: `(open, after_close)` such that the
    /// body tokens are `toks[open + 1 .. after_close - 1]`. `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
}

/// Where a `use`-imported name points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseTarget {
    /// Resolved `crate::module...` path of the defining module (the crate
    /// root is just the crate name); `None` when the path leads outside
    /// the workspace (std, vendored shims).
    pub module: Option<String>,
    /// The imported item name (pre-alias).
    pub item: String,
}

/// The whole-workspace symbol table.
#[derive(Default)]
pub struct SymbolTable {
    /// Every function, in file-then-position order.
    pub fns: Vec<FnDef>,
    /// Free functions by (defining module, name).
    pub free_by_module: BTreeMap<(String, String), usize>,
    /// Methods by (receiver type, name) — multiple impls (trait + inherent,
    /// or same-named types in two crates) keep every candidate.
    pub methods: BTreeMap<(String, String), Vec<usize>>,
    /// Free functions by bare name (workspace-wide fallback).
    pub free_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by bare name (receiver-blind fallback).
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Struct fields: type name -> field name -> declared type tokens.
    pub fields: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// Per-file import map: local alias -> target.
    pub uses: Vec<BTreeMap<String, UseTarget>>,
}

impl SymbolTable {
    /// Builds the table over all `sources`.
    pub fn build(sources: &[SourceFile]) -> SymbolTable {
        let mut table = SymbolTable::default();
        for (file_idx, f) in sources.iter().enumerate() {
            scan_file(file_idx, f, &mut table);
            table.uses.push(collect_uses(f));
        }
        for (id, d) in table.fns.iter().enumerate() {
            let module = sources[d.file].module.clone();
            match &d.impl_type {
                Some(ty) => {
                    table
                        .methods
                        .entry((ty.clone(), d.name.clone()))
                        .or_default()
                        .push(id);
                    table
                        .methods_by_name
                        .entry(d.name.clone())
                        .or_default()
                        .push(id);
                }
                None => {
                    table
                        .free_by_module
                        .entry((module, d.name.clone()))
                        .or_insert(id);
                    table
                        .free_by_name
                        .entry(d.name.clone())
                        .or_default()
                        .push(id);
                }
            }
        }
        table
    }
}

/// Whether the token at `i` has exactly the text `s`.
pub fn tok_is(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).map(|x| x.text.as_str()) == Some(s)
}

fn is_ident(t: &[Tok], i: usize) -> bool {
    t.get(i).map(|x| x.kind) == Some(TokKind::Ident)
}

/// Skips a `< ... >` generic group starting at the `<`; returns the index
/// after the matching `>`. `->`'s `>` (function-trait bounds like
/// `F: Fn() -> u64`) does not close a group.
pub fn skip_angles(t: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < t.len() {
        match t[j].text.as_str() {
            "<" => depth += 1,
            ">" if j > 0 && t[j - 1].text == "-" => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a balanced delimiter run starting at the opener; returns the
/// index after the matching closer.
pub fn skip_balanced(t: &[Tok], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = open_idx;
    while j < t.len() {
        if t[j].text == open {
            depth += 1;
        } else if t[j].text == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// One pass over a file's tokens: `impl` targets (a depth-tracked stack),
/// `fn` definitions, and `struct` fields.
fn scan_file(file_idx: usize, f: &SourceFile, table: &mut SymbolTable) {
    let t = &f.toks;
    let mut depth = 0i64;
    // (depth at which the impl body opened, target type)
    let mut impl_stack: Vec<(i64, String)> = Vec::new();
    let mut i = 0;
    while i < t.len() {
        match t[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                while impl_stack.last().is_some_and(|&(d, _)| d > depth) {
                    impl_stack.pop();
                }
            }
            "impl" if t[i].kind == TokKind::Ident => {
                if let Some((target, open)) = parse_impl_target(t, i) {
                    // The body opens at `open`; record the depth inside it.
                    impl_stack.push((depth + 1, target));
                    depth += 1;
                    i = open + 1;
                    continue;
                }
            }
            "fn" if t[i].kind == TokKind::Ident && is_ident(t, i + 1) => {
                let impl_type = impl_stack.last().map(|(_, ty)| ty.clone());
                if let Some((def, next)) = parse_fn(file_idx, t, i, impl_type) {
                    // Resume at the body's opening brace so the walk
                    // descends into it (nested fns are definitions too);
                    // the depth tracker handles the brace itself.
                    let resume = def.body.map(|(open, _)| open).unwrap_or(next);
                    table.fns.push(def);
                    i = resume;
                    continue;
                }
            }
            "struct" if t[i].kind == TokKind::Ident && is_ident(t, i + 1) => {
                parse_struct(t, i, table);
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parses `impl [<..>] Path [for Path] [where ..] {`: returns the target
/// type (last path segment, after `for` when present) and the index of
/// the opening brace.
fn parse_impl_target(t: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if tok_is(t, j, "<") {
        j = skip_angles(t, j);
    }
    let mut target: Option<String> = None;
    while j < t.len() {
        match t[j].text.as_str() {
            "{" => return target.map(|ty| (ty, j)),
            ";" => return None, // `impl Trait for Type;` does not exist; bail
            "for" => {
                target = None;
                j += 1;
            }
            "where" => {
                // Skip the where clause to the body.
                while j < t.len() && t[j].text != "{" {
                    j += 1;
                }
            }
            "<" => j = skip_angles(t, j),
            _ => {
                if t[j].kind == TokKind::Ident
                    && t[j].text != "dyn"
                    && t[j].text != "mut"
                    && t[j].text != "const"
                {
                    target = Some(t[j].text.clone());
                }
                j += 1;
            }
        }
    }
    None
}

/// Parses a `fn` item starting at the `fn` keyword. Returns the
/// definition and the token index to resume scanning at (after the body
/// or the `;`).
fn parse_fn(
    file_idx: usize,
    t: &[Tok],
    i: usize,
    impl_type: Option<String>,
) -> Option<(FnDef, usize)> {
    let name = t[i + 1].text.clone();
    let line = t[i].line;
    let mut j = i + 2;
    if tok_is(t, j, "<") {
        j = skip_angles(t, j);
    }
    if !tok_is(t, j, "(") {
        return None;
    }
    let params_end = skip_balanced(t, j, "(", ")");
    let params = parse_params(&t[j + 1..params_end - 1], impl_type.as_deref());
    j = params_end;
    let mut ret = Vec::new();
    if tok_is(t, j, "-") && tok_is(t, j + 1, ">") {
        j += 2;
        while j < t.len() {
            match t[j].text.as_str() {
                "{" | ";" | "where" => break,
                _ => {
                    ret.push(t[j].text.clone());
                    j += 1;
                }
            }
        }
    }
    while j < t.len() && t[j].text != "{" && t[j].text != ";" {
        j += 1;
    }
    let body = if tok_is(t, j, "{") {
        let end = skip_balanced(t, j, "{", "}");
        let span = Some((j, end));
        j = end;
        span
    } else {
        j += 1;
        None
    };
    Some((
        FnDef {
            file: file_idx,
            name,
            impl_type,
            line,
            params,
            ret,
            body,
        },
        j,
    ))
}

/// Splits a parameter token slice on top-level commas and extracts
/// `name: Type` pairs (plus the `self` receiver).
fn parse_params(toks: &[Tok], impl_type: Option<&str>) -> Vec<Param> {
    let mut params = Vec::new();
    for group in split_top_level(toks) {
        if group.is_empty() {
            continue;
        }
        // Receiver: `self`, `&self`, `&'a mut self` — `self` with only
        // reference/lifetime/mut sugar before it.
        let lead: Vec<&str> = group
            .iter()
            .take_while(|x| {
                x.text == "&" || x.text == "mut" || x.kind == TokKind::Lifetime
            })
            .map(|x| x.text.as_str())
            .collect();
        if group
            .get(lead.len())
            .is_some_and(|x| x.text == "self")
        {
            params.push(Param {
                name: "self".into(),
                ty: impl_type.map(|s| vec![s.to_string()]).unwrap_or_default(),
            });
            continue;
        }
        // `name: Type` — the name is the ident directly before the first
        // top-level `:` (skipping `mut`); pattern params keep an empty
        // name but still carry their type.
        let colon = find_top_level_colon(group);
        let Some(c) = colon else { continue };
        let name = if c >= 1 && group[c - 1].kind == TokKind::Ident {
            group[c - 1].text.clone()
        } else {
            String::new()
        };
        let mut ty: Vec<String> = group[c + 1..]
            .iter()
            .map(|x| x.text.clone())
            .collect();
        while ty
            .first()
            .is_some_and(|s| s == "&" || s == "mut" || s.starts_with('\''))
        {
            ty.remove(0);
        }
        params.push(Param { name, ty });
    }
    params
}

/// Splits on commas at zero paren/bracket/brace/angle depth.
fn split_top_level(toks: &[Tok]) -> Vec<&[Tok]> {
    let mut out = Vec::new();
    let (mut d, mut a) = (0i64, 0i64);
    let mut start = 0usize;
    for (k, x) in toks.iter().enumerate() {
        match x.text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            "<" => a += 1,
            ">" if k > 0 && toks[k - 1].text == "-" => {}
            ">" => a = (a - 1).max(0),
            "," if d == 0 && a == 0 => {
                out.push(&toks[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

/// Index of the first `:` at zero depth that is not part of `::`.
fn find_top_level_colon(toks: &[Tok]) -> Option<usize> {
    let (mut d, mut a) = (0i64, 0i64);
    let mut k = 0;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" | "[" | "{" => d += 1,
            ")" | "]" | "}" => d -= 1,
            "<" => a += 1,
            ">" if k > 0 && toks[k - 1].text == "-" => {}
            ">" => a = (a - 1).max(0),
            ":" if d == 0 && a == 0 => {
                if toks.get(k + 1).map(|x| x.text.as_str()) == Some(":") {
                    k += 2;
                    continue;
                }
                return Some(k);
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Records a struct's named fields (tuple/unit structs have none worth
/// tracking at token granularity).
fn parse_struct(t: &[Tok], i: usize, table: &mut SymbolTable) {
    let name = t[i + 1].text.clone();
    let mut j = i + 2;
    if tok_is(t, j, "<") {
        j = skip_angles(t, j);
    }
    while j < t.len() && t[j].text != "{" && t[j].text != "(" && t[j].text != ";" {
        j += 1;
    }
    if !tok_is(t, j, "{") {
        return;
    }
    let end = skip_balanced(t, j, "{", "}");
    let mut fields = BTreeMap::new();
    for group in split_top_level(&t[j + 1..end - 1]) {
        // Skip attributes and visibility on the field.
        let mut k = 0;
        while k < group.len() {
            match group[k].text.as_str() {
                "#" => {
                    if group.get(k + 1).map(|x| x.text.as_str()) == Some("[") {
                        let mut d = 0usize;
                        k += 1;
                        while k < group.len() {
                            match group[k].text.as_str() {
                                "[" => d += 1,
                                "]" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        k += 1;
                    } else {
                        k += 1;
                    }
                }
                "pub" => {
                    k += 1;
                    if group.get(k).map(|x| x.text.as_str()) == Some("(") {
                        let mut d = 0usize;
                        while k < group.len() {
                            match group[k].text.as_str() {
                                "(" => d += 1,
                                ")" => {
                                    d -= 1;
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        k += 1;
                    }
                }
                _ => break,
            }
        }
        let rest = &group[k.min(group.len())..];
        if rest.len() >= 2 && rest[0].kind == TokKind::Ident && rest[1].text == ":" {
            let ty: Vec<String> = rest[2..].iter().map(|x| x.text.clone()).collect();
            fields.insert(rest[0].text.clone(), ty);
        }
    }
    table.fields.entry(name).or_insert(fields);
}

/// Maps a use-path's leading segment to a workspace module prefix:
/// `psml_mpc` -> `mpc`, `crate`/`self`/`super` -> the current crate.
/// `None` for std/external paths.
pub fn resolve_path_root(seg: &str, crate_name: &str) -> Option<String> {
    if seg == "crate" || seg == "self" || seg == "super" {
        return Some(crate_name.to_string());
    }
    CRATE_PREFIXES
        .iter()
        .find(|(pkg, _)| *pkg == seg)
        .map(|(_, dir)| dir.to_string())
}

/// Collects every `use` item in the file into an alias -> target map.
fn collect_uses(f: &SourceFile) -> BTreeMap<String, UseTarget> {
    let t = &f.toks;
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].kind == TokKind::Ident && t[i].text == "use" {
            let mut entries = Vec::new();
            let end = parse_use_tree(t, i + 1, &[], &mut entries);
            for (alias, segs) in entries {
                if segs.len() < 2 {
                    continue;
                }
                let Some(root) = resolve_path_root(&segs[0], &f.crate_name) else {
                    continue;
                };
                // The defining module is the path minus the item; a
                // two-segment path (`psml_mpc::SharePair`) points at the
                // crate root re-export.
                let module = if segs.len() == 2 {
                    root
                } else {
                    format!("{root}::{}", segs[1..segs.len() - 1].join("::"))
                };
                map.insert(
                    alias,
                    UseTarget {
                        module: Some(module),
                        item: segs.last().unwrap().clone(),
                    },
                );
            }
            i = end;
            continue;
        }
        i += 1;
    }
    map
}

/// Parses one use-tree starting at `i` (after `use` or a group comma),
/// appending `(alias, full path)` pairs. Returns the index after the
/// terminating `;` / `,` / `}`.
fn parse_use_tree(
    t: &[Tok],
    mut i: usize,
    prefix: &[String],
    out: &mut Vec<(String, Vec<String>)>,
) -> usize {
    let mut segs = prefix.to_vec();
    while i < t.len() {
        match t[i].text.as_str() {
            "{" => {
                // Group: recurse per comma-separated branch.
                i += 1;
                loop {
                    i = parse_use_tree(t, i, &segs, out);
                    if tok_is(t, i.wrapping_sub(1), "}") || i >= t.len() {
                        break;
                    }
                }
                // After the group closes, expect `;` or `,`/`}` upstream.
                if tok_is(t, i, ";") || tok_is(t, i, ",") {
                    i += 1;
                }
                return i;
            }
            "}" | ";" | "," => {
                if let Some(item) = segs.last() {
                    if segs.len() > prefix.len() && item != "*" {
                        out.push((item.clone(), segs.clone()));
                    }
                }
                return i + 1;
            }
            "as" => {
                // `path as Alias`
                if let Some(alias) = t.get(i + 1) {
                    out.push((alias.text.clone(), segs.clone()));
                }
                i += 2;
                // Consume the terminator for this branch.
                if tok_is(t, i, ";") || tok_is(t, i, ",") || tok_is(t, i, "}") {
                    return i + 1;
                }
                return i;
            }
            ":" => i += 1,
            _ => {
                if t[i].kind == TokKind::Ident || t[i].text == "*" {
                    segs.push(t[i].text.clone());
                }
                i += 1;
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Context;

    fn parse(src: &str) -> (Vec<SourceFile>, SymbolTable) {
        let f = SourceFile::parse("a.rs", "mpc", "mpc::share", Context::Lib, src);
        let sources = vec![f];
        let table = SymbolTable::build(&sources);
        (sources, table)
    }

    #[test]
    fn free_fn_and_method_are_separated() {
        let (_, t) = parse(
            "fn free(x: u64) -> u64 { x }\n\
             struct S { v: u64 }\n\
             impl S { fn get(&self) -> u64 { self.v } }\n",
        );
        assert_eq!(t.fns.len(), 2);
        assert!(t.free_by_module.contains_key(&("mpc::share".into(), "free".into())));
        let m = &t.methods[&("S".to_string(), "get".to_string())];
        assert_eq!(m.len(), 1);
        assert_eq!(t.fns[m[0]].params[0].name, "self");
        assert_eq!(t.fns[m[0]].params[0].ty, vec!["S".to_string()]);
        assert_eq!(t.fields["S"]["v"], vec!["u64".to_string()]);
    }

    #[test]
    fn impl_for_targets_the_type_not_the_trait() {
        let (_, t) = parse(
            "struct W;\nimpl std::fmt::Debug for W {\n  fn fmt(&self) -> u8 { 0 }\n}\n",
        );
        assert!(t.methods.contains_key(&("W".to_string(), "fmt".to_string())));
    }

    #[test]
    fn generic_fn_params_and_return_survive_angles() {
        let (_, t) = parse(
            "fn gemm<R: Num, F: Fn() -> u64>(a: &Matrix<R>, n: usize) -> Matrix<R> { a.clone() }\n",
        );
        let d = &t.fns[0];
        assert_eq!(d.name, "gemm");
        assert_eq!(d.params.len(), 2);
        assert_eq!(d.params[0].name, "a");
        assert_eq!(d.params[0].ty[0], "Matrix");
        assert_eq!(d.params[1].name, "n");
        assert_eq!(d.ret[0], "Matrix");
        assert!(d.body.is_some());
    }

    #[test]
    fn use_groups_aliases_and_crate_paths_resolve() {
        let (_, t) = parse(
            "use psml_tensor::matrix::{Matrix, Shape as S};\n\
             use crate::triple::gen_triple;\n\
             use std::collections::HashMap;\n\
             fn f() {}\n",
        );
        let uses = &t.uses[0];
        assert_eq!(
            uses["Matrix"],
            UseTarget { module: Some("tensor::matrix".into()), item: "Matrix".into() }
        );
        assert_eq!(
            uses["S"],
            UseTarget { module: Some("tensor::matrix".into()), item: "Shape".into() }
        );
        assert_eq!(
            uses["gen_triple"],
            UseTarget { module: Some("mpc::triple".into()), item: "gen_triple".into() }
        );
        assert!(!uses.contains_key("HashMap"), "std paths are not workspace targets");
    }

    #[test]
    fn nested_fns_and_trait_decls() {
        let (_, t) = parse(
            "trait T { fn decl(&self, x: u64) -> u64; }\n\
             fn outer() { fn inner(y: u8) {} }\n",
        );
        let names: Vec<&str> = t.fns.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"decl"));
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner"));
        let decl = t.fns.iter().find(|d| d.name == "decl").unwrap();
        assert!(decl.body.is_none());
    }
}

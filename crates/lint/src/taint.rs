//! Inter-procedural secret taint.
//!
//! Per function the pass tracks which locals/params hold secret-derived
//! values; per-function *summaries* (`returns_secret`, which parameters
//! flow to a format sink) propagate secrecy across call edges, iterated
//! to a fixpoint over the whole workspace. The lattice is intentionally
//! tiny — `public < secret` per binding, plus a `cross` bit recording
//! whether the taint crossed a function boundary — because the rule only
//! ever asks one question: can limb material reach a format sink?
//!
//! Taint *enters* at values whose declared type is in the secret registry
//! and at calls to functions summarized as returning secrets. Taint
//! *exits* only at the sanctioned points: metadata accessors/fields
//! (shape, dims, ring) and the declassification methods (`reconstruct`,
//! `reveal`, ... — the protocol's public `E`/`F` values). Everything else
//! propagates, including through struct fields and indexing.
//!
//! Findings are reported as [`RuleId::SecretCrossFunctionLeak`] only when
//! the flow actually crosses a function boundary (a call edge appears in
//! the provenance) — single-file flows remain `secrecy.format-leak`'s
//! business, so the two rules never double-report one site.

use crate::callgraph::{CallGraph, CallSite};
use crate::config::{DECLASSIFY_CALLS, FORMAT_MACROS, METADATA_ACCESSORS, METADATA_FIELDS};
use crate::findings::{Evidence, Finding, RuleId};
use crate::lexer::{Tok, TokKind};
use crate::rules::SecretRegistry;
use crate::source::SourceFile;
use crate::symbols::{skip_balanced, SymbolTable};
use std::collections::BTreeMap;

/// Taint on one binding.
#[derive(Clone, Debug)]
pub struct Taint {
    /// Whether the value crossed a function boundary on its way here.
    pub cross: bool,
    /// Provenance steps, oldest first.
    pub src: Vec<Evidence>,
}

/// Longest provenance chain kept per value — deep call stacks truncate
/// rather than ballooning the report.
const MAX_EVIDENCE: usize = 6;

impl Taint {
    fn step(mut self, e: Evidence) -> Taint {
        if self.src.len() < MAX_EVIDENCE {
            self.src.push(e);
        }
        self
    }
}

/// What the rest of the workspace needs to know about one function.
#[derive(Clone, Default, Debug)]
pub struct FnSummary {
    /// The return value carries secret material.
    pub returns_secret: bool,
    /// Provenance of the returned secret (for evidence chains).
    pub ret_src: Vec<Evidence>,
    /// Parameters (by index) that reach a format sink inside this
    /// function (directly or through further calls), with the chain to
    /// the sink. Secret-*typed* parameters are excluded — the per-file
    /// pass already flags those inside the callee.
    pub leak_params: BTreeMap<usize, Vec<Evidence>>,
}

/// Fixpoint result: summaries plus each function's final taint
/// environment (the timing pass reuses the environments).
pub struct TaintAnalysis {
    /// Indexed by function id.
    pub summaries: Vec<FnSummary>,
    /// Indexed by function id: binding name -> taint.
    pub env: Vec<BTreeMap<String, Taint>>,
}

/// Runs the workspace fixpoint and returns the analysis plus
/// cross-function leak findings.
pub fn analyze(
    sources: &[SourceFile],
    table: &SymbolTable,
    cg: &CallGraph,
    secrets: &SecretRegistry,
) -> (TaintAnalysis, Vec<Finding>) {
    let n = table.fns.len();
    let mut summaries = vec![FnSummary::default(); n];
    let mut env: Vec<BTreeMap<String, Taint>> = vec![BTreeMap::new(); n];
    // Monotone iteration: taint and summaries only grow, so this
    // terminates; the bound is belt-and-braces against resolution bugs.
    for _round in 0..10 {
        let mut changed = false;
        for id in 0..n {
            let locals = compute_env(id, sources, table, cg, secrets, &summaries);
            let summary = compute_summary(id, sources, table, cg, secrets, &summaries, &locals);
            let old = &summaries[id];
            if summary.returns_secret != old.returns_secret
                || summary.leak_params.len() != old.leak_params.len()
                || !summary.leak_params.keys().eq(old.leak_params.keys())
            {
                changed = true;
            }
            summaries[id] = summary;
            env[id] = locals;
        }
        if !changed {
            break;
        }
    }
    let mut findings = Vec::new();
    for (id, locals) in env.iter().enumerate() {
        report_fn(id, sources, table, cg, secrets, &summaries, locals, &mut findings);
    }
    // One mention per site: an ident repeated inside a macro's argument
    // list would otherwise produce one finding per occurrence.
    let mut seen = std::collections::BTreeSet::new();
    findings.retain(|fin| seen.insert((fin.file.clone(), fin.line, fin.rule, fin.message.clone())));
    (TaintAnalysis { summaries, env }, findings)
}

fn tok_is(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).map(|x| x.text.as_str()) == Some(s)
}

fn is_ident(t: &[Tok], i: usize) -> bool {
    t.get(i).map(|x| x.kind) == Some(TokKind::Ident)
}

/// Whether the identifier at `k` starts an expression chain (not a field
/// / method / path tail position).
fn is_base_ident(t: &[Tok], k: usize) -> bool {
    if t[k].kind != TokKind::Ident {
        return false;
    }
    if k >= 1 && t[k - 1].text == "." {
        return false;
    }
    if k >= 2 && t[k - 1].text == ":" && t[k - 2].text == ":" {
        return false;
    }
    true
}

/// Evaluates the taint of the postfix chain rooted at token `k` (a base
/// identifier or a resolved call). Returns `None` when the chain result
/// is public — including chains that end in a metadata accessor/field or
/// pass through a declassification call.
pub(crate) fn chain_taint(
    f: &SourceFile,
    k: usize,
    env: &BTreeMap<String, Taint>,
    secrets: &SecretRegistry,
    sites: &BTreeMap<usize, CallSite>,
    summaries: &[FnSummary],
) -> Option<Taint> {
    let t = &f.toks;
    let name = t[k].text.as_str();
    let mut j;
    let mut current: Option<Taint>;
    if let Some(site) = sites.get(&k) {
        // Resolved call: taint iff the callee returns secret material.
        let s = &summaries[site.callee];
        current = if s.returns_secret {
            let mut src = s.ret_src.clone();
            src.truncate(MAX_EVIDENCE - 1);
            src.push(Evidence {
                file: f.path.clone(),
                line: t[k].line,
                note: format!("secret-returning call `{name}(..)`"),
            });
            Some(Taint { cross: true, src })
        } else {
            None
        };
        j = skip_balanced(t, site.args_open, "(", ")");
    } else if tok_is(t, k + 1, "(") {
        // Unresolved call: opaque, assume public result.
        current = None;
        j = skip_balanced(t, k + 1, "(", ")");
    } else {
        current = match env.get(name) {
            Some(taint) => Some(taint.clone()),
            None if secrets.contains(name) && tok_is(t, k + 1, "{") => {
                // Secret type in struct-literal position. Path position
                // (`SharedMatrix::reveal_insecure`) is deliberately NOT a
                // taint root — there the *method* decides the result, and
                // resolved `Type::method` calls are handled above.
                Some(Taint {
                    cross: false,
                    src: vec![Evidence {
                        file: f.path.clone(),
                        line: t[k].line,
                        note: format!("secret type `{name}`"),
                    }],
                })
            }
            None => None,
        };
        j = k + 1;
    }
    loop {
        if tok_is(t, j, ".") && is_ident(t, j + 1) {
            let m = t[j + 1].text.as_str();
            if tok_is(t, j + 2, "(") {
                if DECLASSIFY_CALLS.contains(&m) || METADATA_ACCESSORS.contains(&m) {
                    return None;
                }
                // A resolved secret-returning method taints even a public
                // receiver (`provider.take(spec)`).
                if current.is_none() {
                    if let Some(site) = sites.get(&(j + 1)) {
                        let s = &summaries[site.callee];
                        if s.returns_secret {
                            let mut src = s.ret_src.clone();
                            src.truncate(MAX_EVIDENCE - 1);
                            src.push(Evidence {
                                file: f.path.clone(),
                                line: t[j + 1].line,
                                note: format!("secret-returning call `.{m}(..)`"),
                            });
                            current = Some(Taint { cross: true, src });
                        }
                    }
                }
                j = skip_balanced(t, j + 2, "(", ")");
            } else {
                if METADATA_FIELDS.contains(&m) || METADATA_ACCESSORS.contains(&m) {
                    return None;
                }
                j += 2;
            }
        } else if tok_is(t, j, "[") {
            // Indexing into a secret container yields secret material.
            j = skip_balanced(t, j, "[", "]");
        } else if tok_is(t, j, "?") {
            j += 1;
        } else {
            break;
        }
    }
    current
}

/// Taint of an expression region: the join over its chain roots, with
/// boundary-crossing provenance preferred when several are tainted.
pub(crate) fn expr_taint(
    f: &SourceFile,
    range: (usize, usize),
    env: &BTreeMap<String, Taint>,
    secrets: &SecretRegistry,
    sites: &BTreeMap<usize, CallSite>,
    summaries: &[FnSummary],
) -> Option<Taint> {
    let t = &f.toks;
    let mut best: Option<Taint> = None;
    for k in range.0..range.1.min(t.len()) {
        if !is_base_ident(t, k) && !sites.contains_key(&k) {
            continue;
        }
        if let Some(taint) = chain_taint(f, k, env, secrets, sites, summaries) {
            let better = match &best {
                None => true,
                Some(b) => taint.cross && !b.cross,
            };
            if better {
                best = Some(taint);
            }
        }
    }
    best
}

/// One environment pass over a function body: seeds from secret-typed
/// params, then `let`-binding propagation iterated until stable.
fn compute_env(
    id: usize,
    sources: &[SourceFile],
    table: &SymbolTable,
    cg: &CallGraph,
    secrets: &SecretRegistry,
    summaries: &[FnSummary],
) -> BTreeMap<String, Taint> {
    let d = &table.fns[id];
    let f = &sources[d.file];
    let mut env: BTreeMap<String, Taint> = BTreeMap::new();
    for p in &d.params {
        if p.name.is_empty() {
            continue;
        }
        if p.ty.iter().any(|ty| secrets.contains(ty)) {
            env.insert(
                p.name.clone(),
                Taint {
                    cross: false,
                    src: vec![Evidence {
                        file: f.path.clone(),
                        line: d.line,
                        note: format!(
                            "secret parameter `{}` of `{}`",
                            p.name,
                            d.name
                        ),
                    }],
                },
            );
        }
    }
    let Some((open, end)) = d.body else { return env };
    let t = &f.toks;
    let sites = &cg.calls[id];
    // Flow-insensitive within the body: re-scan until no binding gains
    // taint (handles helper-before-use orderings).
    for _ in 0..4 {
        let before = env.len();
        let mut j = open + 1;
        while j + 1 < end {
            if t[j].text == "let" {
                if let Some((name, rhs)) = parse_let(t, j, end) {
                    if let Some(decl_ty) = binding_type(t, j, end) {
                        if decl_ty.iter().any(|ty| secrets.contains(ty.as_str()))
                            && !env.contains_key(&name)
                        {
                            env.insert(
                                name.clone(),
                                Taint {
                                    cross: false,
                                    src: vec![Evidence {
                                        file: f.path.clone(),
                                        line: t[j].line,
                                        note: format!("`{name}` declared with secret type"),
                                    }],
                                },
                            );
                        }
                    }
                    if let Some(rhs) = rhs {
                        if !env.contains_key(&name) {
                            if let Some(taint) =
                                expr_taint(f, rhs, &env, secrets, sites, summaries)
                            {
                                let taint = taint.step(Evidence {
                                    file: f.path.clone(),
                                    line: t[j].line,
                                    note: format!("flows into `{name}`"),
                                });
                                env.insert(name, taint);
                            }
                        }
                    }
                }
            }
            j += 1;
        }
        if env.len() == before {
            break;
        }
    }
    env
}

/// Parses `let [mut] NAME [.. ] = RHS` (plus the single-binding pattern
/// forms `let Some(x) = ..` / `let Ok(x) = ..`). Returns the bound name
/// and the RHS token range when present.
fn parse_let(t: &[Tok], let_idx: usize, limit: usize) -> Option<(String, Option<(usize, usize)>)> {
    let mut m = let_idx + 1;
    if tok_is(t, m, "mut") {
        m += 1;
    }
    let name = if is_ident(t, m) && tok_is(t, m + 1, "(") && is_ident(t, m + 2) && tok_is(t, m + 3, ")")
    {
        // `let Some(x)` / `let Ok(x)`
        let inner = t[m + 2].text.clone();
        m += 4;
        inner
    } else if is_ident(t, m) {
        let n = t[m].text.clone();
        m += 1;
        n
    } else {
        return None;
    };
    // Skip an optional `: Type` annotation to the `=`.
    let mut depth = 0i64;
    let mut k = m;
    while k < limit {
        match t[k].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return Some((name, None));
                }
                depth -= 1;
            }
            ";" if depth == 0 => return Some((name, None)),
            "=" if depth == 0 && !tok_is(t, k + 1, "=") && !tok_is(t, k.wrapping_sub(1), "=") =>
            {
                // RHS runs to the statement end (`;` at this depth) or,
                // for `if let`/`while let`, the block opener.
                let mut d2 = 0i64;
                let mut e = k + 1;
                while e < limit {
                    match t[e].text.as_str() {
                        "(" | "[" => d2 += 1,
                        ")" | "]" => d2 -= 1,
                        "{" if d2 == 0 => break,
                        "{" => d2 += 1,
                        "}" => d2 -= 1,
                        ";" if d2 == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                return Some((name, Some((k + 1, e))));
            }
            _ => {}
        }
        k += 1;
    }
    Some((name, None))
}

/// The `: Type` annotation tokens of a `let` binding, when present.
fn binding_type(t: &[Tok], let_idx: usize, limit: usize) -> Option<Vec<String>> {
    let mut m = let_idx + 1;
    if tok_is(t, m, "mut") {
        m += 1;
    }
    if !is_ident(t, m) || !tok_is(t, m + 1, ":") || tok_is(t, m + 2, ":") {
        return None;
    }
    let mut ty = Vec::new();
    let mut k = m + 2;
    let mut angle = 0i64;
    while k < limit {
        match t[k].text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "=" | ";" if angle <= 0 => break,
            _ => {}
        }
        ty.push(t[k].text.clone());
        k += 1;
    }
    Some(ty)
}

/// Summary extraction: declared/inferred secret returns and
/// param-to-sink flows (direct and through calls).
fn compute_summary(
    id: usize,
    sources: &[SourceFile],
    table: &SymbolTable,
    cg: &CallGraph,
    secrets: &SecretRegistry,
    summaries: &[FnSummary],
    env: &BTreeMap<String, Taint>,
) -> FnSummary {
    let d = &table.fns[id];
    let f = &sources[d.file];
    let mut out = FnSummary::default();
    if DECLASSIFY_CALLS.contains(&d.name.as_str()) {
        // Declassification points return public values by definition.
        return out;
    }
    if let Some(ty) = d.ret.iter().find(|ty| secrets.contains(ty)) {
        out.returns_secret = true;
        out.ret_src = vec![Evidence {
            file: f.path.clone(),
            line: d.line,
            note: format!("`{}` returns secret type `{ty}`", d.name),
        }];
    }
    let Some((open, end)) = d.body else { return out };
    let t = &f.toks;
    let sites = &cg.calls[id];

    if !out.returns_secret {
        // `return <expr>` statements...
        let mut j = open + 1;
        while j + 1 < end {
            if t[j].text == "return" && t[j].kind == TokKind::Ident {
                let mut e = j + 1;
                let mut depth = 0i64;
                while e < end {
                    match t[e].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                if let Some(taint) = expr_taint(f, (j + 1, e), env, secrets, sites, summaries) {
                    out.returns_secret = true;
                    out.ret_src = taint
                        .step(Evidence {
                            file: f.path.clone(),
                            line: t[j].line,
                            note: format!("returned from `{}`", d.name),
                        })
                        .src;
                    break;
                }
            }
            j += 1;
        }
    }
    if !out.returns_secret && !d.ret.is_empty() {
        // ...and the tail expression: tokens after the last top-level `;`
        // or statement-level `}` (a trailing loop/block is a statement,
        // not part of the tail — without the `}` reset, a final
        // `for .. { secret }` loop would smear its body into the tail).
        let mut depth = 0i64;
        let mut tail = open + 1;
        for (k, tok) in t.iter().enumerate().take(end - 1).skip(open + 1) {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        tail = k + 1;
                    }
                }
                ";" if depth == 0 => tail = k + 1,
                _ => {}
            }
        }
        if tail < end - 1 {
            if let Some(taint) = expr_taint(f, (tail, end - 1), env, secrets, sites, summaries) {
                out.returns_secret = true;
                out.ret_src = taint
                    .step(Evidence {
                        file: f.path.clone(),
                        line: t[tail].line,
                        note: format!("returned from `{}`", d.name),
                    })
                    .src;
            }
        }
    }

    // Param-to-sink flows. Secret-typed params are excluded (the
    // per-file format-leak rule already fires inside this function).
    let param_idx: BTreeMap<&str, usize> = d
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.name.is_empty() && !p.ty.iter().any(|ty| secrets.contains(ty)))
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();
    if param_idx.is_empty() {
        return out;
    }
    for_each_sink(f, open, end, |sink_name, args: (usize, usize), line| {
        for k in args.0..args.1 {
            if t[k].kind == TokKind::Str {
                // Inline captures format the whole value — always a leak
                // for the named parameter.
                for name in inline_format_idents(&t[k].text) {
                    if let Some(&pi) = param_idx.get(name.as_str()) {
                        out.leak_params.entry(pi).or_insert_with(|| {
                            vec![Evidence {
                                file: f.path.clone(),
                                line,
                                note: format!(
                                    "parameter `{name}` of `{}` reaches `{sink_name}`",
                                    d.name
                                ),
                            }]
                        });
                    }
                }
                continue;
            }
            if !is_base_ident(t, k) {
                continue;
            }
            if let Some(&pi) = param_idx.get(t[k].text.as_str()) {
                // The chain must not end clean, else nothing leaks.
                let probe: BTreeMap<String, Taint> = BTreeMap::from([(
                    t[k].text.clone(),
                    Taint { cross: false, src: Vec::new() },
                )]);
                if chain_taint(f, k, &probe, secrets, sites, summaries).is_some() {
                    out.leak_params.entry(pi).or_insert_with(|| {
                        vec![Evidence {
                            file: f.path.clone(),
                            line,
                            note: format!(
                                "parameter `{}` of `{}` reaches `{sink_name}`",
                                t[k].text, d.name
                            ),
                        }]
                    });
                }
            }
        }
    });
    // Transitive: passing a param onward to a callee that leaks it.
    for site in sites.values() {
        let callee = &summaries[site.callee];
        if callee.leak_params.is_empty() {
            continue;
        }
        let args = CallGraph::arg_ranges(t, site.args_open);
        for (&ci, chain) in &callee.leak_params {
            let Some(&(a, b)) = args.get(ci) else { continue };
            for k in a..b {
                if !is_base_ident(t, k) {
                    continue;
                }
                if let Some(&pi) = param_idx.get(t[k].text.as_str()) {
                    out.leak_params.entry(pi).or_insert_with(|| {
                        let mut ev = vec![Evidence {
                            file: f.path.clone(),
                            line: site.line,
                            note: format!(
                                "parameter `{}` of `{}` passed to `{}`",
                                t[k].text, d.name, table.fns[site.callee].name
                            ),
                        }];
                        ev.extend(chain.iter().take(MAX_EVIDENCE - 1).cloned());
                        ev
                    });
                }
            }
        }
    }
    out
}

/// Identifiers captured inline by a format string (`"{name}"`,
/// `"{name:?}"`). Escaped `{{` braces and positional/numbered args are
/// skipped. The lexer hides string contents from the token stream, so the
/// sink scans must dig these out of the literal text themselves — modern
/// format strings capture by name more often than they pass arguments.
fn inline_format_idents(s: &str) -> Vec<String> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'{' {
            if i + 1 < b.len() && b[i + 1] == b'{' {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if j > i + 1
                && j < b.len()
                && (b[j] == b'}' || b[j] == b':')
                && !b[i + 1].is_ascii_digit()
            {
                out.push(String::from_utf8_lossy(&b[i + 1..j]).into_owned());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

/// Invokes `visit(sink_name, arg_range, line)` for every format-macro and
/// `TraceSink` call in the body range.
fn for_each_sink(
    f: &SourceFile,
    open: usize,
    end: usize,
    mut visit: impl FnMut(&str, (usize, usize), u32),
) {
    let t = &f.toks;
    let mut i = open + 1;
    while i + 1 < end {
        let is_format_macro = t[i].kind == TokKind::Ident
            && FORMAT_MACROS.contains(&t[i].text.as_str())
            && tok_is(t, i + 1, "!")
            && tok_is(t, i + 2, "(");
        let is_trace_sink = t[i].text == "TraceSink"
            && tok_is(t, i + 1, ":")
            && tok_is(t, i + 2, ":")
            && is_ident(t, i + 3)
            && tok_is(t, i + 4, "(");
        let args_open = if is_format_macro {
            i + 2
        } else if is_trace_sink {
            i + 4
        } else {
            i += 1;
            continue;
        };
        let close = skip_balanced(t, args_open, "(", ")");
        visit(&t[i].text, (args_open + 1, close.saturating_sub(1)), t[i].line);
        i = close;
    }
}

/// Final reporting pass for one function.
#[allow(clippy::too_many_arguments)]
fn report_fn(
    id: usize,
    sources: &[SourceFile],
    table: &SymbolTable,
    cg: &CallGraph,
    secrets: &SecretRegistry,
    summaries: &[FnSummary],
    env: &BTreeMap<String, Taint>,
    findings: &mut Vec<Finding>,
) {
    let d = &table.fns[id];
    let f = &sources[d.file];
    let Some((open, end)) = d.body else { return };
    let t = &f.toks;
    let sites = &cg.calls[id];

    // (a) boundary-crossing taint reaching a sink in this function —
    // as an explicit argument token or an inline `{name}` capture.
    let mut sink_hits: Vec<(usize, String, u32)> = Vec::new();
    let mut inline_hits: Vec<(String, String, u32)> = Vec::new();
    for_each_sink(f, open, end, |sink_name, args, _line| {
        for k in args.0..args.1 {
            if t[k].kind == TokKind::Str {
                for name in inline_format_idents(&t[k].text) {
                    inline_hits.push((name, sink_name.to_string(), t[k].line));
                }
                continue;
            }
            if !is_base_ident(t, k) && !sites.contains_key(&k) {
                continue;
            }
            sink_hits.push((k, sink_name.to_string(), t[k].line));
        }
    });
    for (name, sink_name, line) in inline_hits {
        if f.is_test_line(line) {
            continue;
        }
        let Some(taint) = env.get(&name) else { continue };
        if !taint.cross {
            continue;
        }
        let mut fin = Finding::new(
            RuleId::SecretCrossFunctionLeak,
            &f.path,
            line,
            format!(
                "`{name}` carries secret material across a function boundary into `{sink_name}`; declassify ({}) or format metadata only",
                DECLASSIFY_CALLS.join("/"),
            ),
            f.line_text(line),
        );
        fin.evidence = taint
            .clone()
            .step(Evidence {
                file: f.path.clone(),
                line,
                note: format!("reaches `{sink_name}` here"),
            })
            .src;
        findings.push(fin);
    }
    for (k, sink_name, line) in sink_hits {
        if f.is_test_line(line) {
            continue;
        }
        let Some(taint) = chain_taint(f, k, env, secrets, sites, summaries) else {
            continue;
        };
        if !taint.cross {
            continue; // same-file flows are secrecy.format-leak's job
        }
        let mut fin = Finding::new(
            RuleId::SecretCrossFunctionLeak,
            &f.path,
            line,
            format!(
                "`{}` carries secret material across a function boundary into `{sink_name}`; declassify ({}) or format metadata only",
                t[k].text,
                DECLASSIFY_CALLS.join("/"),
            ),
            f.line_text(line),
        );
        fin.evidence = taint
            .step(Evidence {
                file: f.path.clone(),
                line,
                note: format!("reaches `{sink_name}` here"),
            })
            .src;
        findings.push(fin);
    }

    // (b) secret arguments handed to a callee that leaks that parameter.
    for site in sites.values() {
        if f.is_test_line(site.line) {
            continue;
        }
        let callee_sum = &summaries[site.callee];
        if callee_sum.leak_params.is_empty() {
            continue;
        }
        let args = CallGraph::arg_ranges(t, site.args_open);
        for (&ci, chain) in &callee_sum.leak_params {
            let Some(&(a, b)) = args.get(ci) else { continue };
            let Some(taint) = expr_taint(f, (a, b), env, secrets, sites, summaries) else {
                continue;
            };
            let callee_name = &table.fns[site.callee].name;
            let mut fin = Finding::new(
                RuleId::SecretCrossFunctionLeak,
                &f.path,
                site.line,
                format!(
                    "secret value passed to `{callee_name}`, which formats its argument #{ci}",
                ),
                f.line_text(site.line),
            );
            let mut ev = taint.src;
            ev.push(Evidence {
                file: f.path.clone(),
                line: site.line,
                note: format!("passed to `{callee_name}`"),
            });
            ev.extend(chain.iter().cloned());
            ev.truncate(MAX_EVIDENCE + 2);
            fin.evidence = ev;
            findings.push(fin);
        }
    }
}

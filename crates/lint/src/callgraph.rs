//! Call-site resolution over the workspace symbol table.
//!
//! Resolution is deliberately conservative: a call resolves only when the
//! token pattern pins down a unique workspace definition — same-module
//! free functions, `use`-imported paths, fully-qualified `crate::module`
//! paths, `Type::method`, `self.method` inside an impl, and receiver-blind
//! `x.method(..)` when exactly one type in the workspace defines the
//! method. Anything ambiguous stays unresolved, and the dataflow passes
//! treat unresolved calls as opaque (no taint transfer, no lock summary),
//! trading recall for a zero-false-positive default.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;
use crate::symbols::{skip_balanced, SymbolTable};
use std::collections::BTreeMap;

/// One resolved call site inside a function body.
#[derive(Clone, Copy, Debug)]
pub struct CallSite {
    /// Callee function id (index into `SymbolTable::fns`).
    pub callee: usize,
    /// Token index of the call's name identifier.
    pub name_tok: usize,
    /// Token index of the opening `(` of the argument list.
    pub args_open: usize,
    /// 1-based line of the call.
    pub line: u32,
}

/// Per-function resolved call sites, indexed by caller function id; the
/// map key is the name-token index (so expression scans can look up "is
/// this identifier a resolved call?" in O(log n)).
pub struct CallGraph {
    /// caller fn id -> (name-token index -> call site).
    pub calls: Vec<BTreeMap<usize, CallSite>>,
}

impl CallGraph {
    /// Resolves every call site in every function body.
    pub fn build(sources: &[SourceFile], table: &SymbolTable) -> CallGraph {
        let mut calls = Vec::with_capacity(table.fns.len());
        for d in &table.fns {
            let mut sites = BTreeMap::new();
            if let Some((open, end)) = d.body {
                let f = &sources[d.file];
                let t = &f.toks;
                for j in open + 1..end.saturating_sub(1) {
                    if t[j].kind != TokKind::Ident || !tok_is(t, j + 1, "(") {
                        continue;
                    }
                    if KEYWORDS.contains(&t[j].text.as_str()) {
                        continue;
                    }
                    // Definitions and macros are not calls.
                    if j > 0 && (t[j - 1].text == "fn" || tok_is(t, j + 1, "!")) {
                        continue;
                    }
                    let callee = resolve(sources, table, d.file, d.impl_type.as_deref(), t, j);
                    if let Some(callee) = callee {
                        sites.insert(
                            j,
                            CallSite {
                                callee,
                                name_tok: j,
                                args_open: j + 1,
                                line: t[j].line,
                            },
                        );
                    }
                }
            }
            calls.push(sites);
        }
        CallGraph { calls }
    }

    /// Splits a call's argument tokens on top-level commas, returning the
    /// token-index range of each argument.
    pub fn arg_ranges(t: &[Tok], args_open: usize) -> Vec<(usize, usize)> {
        let close = skip_balanced(t, args_open, "(", ")").saturating_sub(1);
        let mut out = Vec::new();
        let mut depth = 0i64;
        let mut start = args_open + 1;
        for (k, tok) in t.iter().enumerate().take(close).skip(args_open) {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 1 => {
                    out.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
        }
        if close > start {
            out.push((start, close));
        }
        out
    }
}

/// Keywords that look like identifiers to the lexer; used to tell
/// `name(..)` calls and `expr[..]` indexing apart from keyword-led
/// constructs (`if (..)`, `in [..]`, ...).
pub const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "fn", "let", "move", "in",
    "as", "where", "impl", "dyn", "break", "continue", "unsafe", "mut", "ref", "use",
];

fn tok_is(t: &[Tok], i: usize, s: &str) -> bool {
    t.get(i).map(|x| x.text.as_str()) == Some(s)
}

/// Resolves the call whose name identifier sits at `j` (followed by `(`).
fn resolve(
    sources: &[SourceFile],
    table: &SymbolTable,
    file_idx: usize,
    impl_type: Option<&str>,
    t: &[Tok],
    j: usize,
) -> Option<usize> {
    let name = t[j].text.as_str();
    // Method call: `<recv> . name (`.
    if j >= 1 && t[j - 1].text == "." {
        // `self.name(..)` inside an impl resolves against the impl target
        // first.
        if j >= 2 && t[j - 2].text == "self" {
            if let Some(ty) = impl_type {
                if let Some(ids) = table.methods.get(&(ty.to_string(), name.to_string())) {
                    if ids.len() == 1 {
                        return Some(ids[0]);
                    }
                }
            }
        }
        // Receiver-blind fallback: unique method name across the
        // workspace — except names the std prelude also defines, where
        // "unique in the workspace" proves nothing about the receiver.
        if crate::config::STD_METHODS.contains(&name) {
            return None;
        }
        let ids = table.methods_by_name.get(name)?;
        return if ids.len() == 1 { Some(ids[0]) } else { None };
    }
    // Path call: `<segs> :: name (` — collect the qualifier backward.
    if j >= 2 && t[j - 1].text == ":" && t[j - 2].text == ":" {
        let mut segs: Vec<String> = Vec::new();
        let mut k = j;
        while k >= 2 && t[k - 1].text == ":" && t[k - 2].text == ":" {
            if k >= 3 && t[k - 3].kind == TokKind::Ident {
                segs.insert(0, t[k - 3].text.clone());
                k -= 3;
            } else {
                // Turbofish or non-ident qualifier: give up on the path.
                return None;
            }
        }
        return resolve_path(sources, table, file_idx, impl_type, &segs, name);
    }
    // Bare call.
    let module = &sources[file_idx].module;
    if let Some(&id) = table
        .free_by_module
        .get(&(module.clone(), name.to_string()))
    {
        return Some(id);
    }
    if let Some(target) = table.uses[file_idx].get(name) {
        if let Some(m) = &target.module {
            if let Some(&id) = table.free_by_module.get(&(m.clone(), target.item.clone())) {
                return Some(id);
            }
        }
    }
    let ids = table.free_by_name.get(name)?;
    if ids.len() == 1 {
        Some(ids[0])
    } else {
        None
    }
}

/// Resolves `segs :: name (` against types, imports, and modules.
fn resolve_path(
    sources: &[SourceFile],
    table: &SymbolTable,
    file_idx: usize,
    impl_type: Option<&str>,
    segs: &[String],
    name: &str,
) -> Option<usize> {
    if segs.is_empty() {
        return None;
    }
    let last = segs.last().unwrap().as_str();
    let starts_upper = last.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    if starts_upper || last == "Self" {
        // `Type::method` (or `Self::method` inside an impl).
        let ty = if last == "Self" { impl_type? } else { last };
        let ids = table.methods.get(&(ty.to_string(), name.to_string()))?;
        return if ids.len() == 1 { Some(ids[0]) } else { None };
    }
    // Module-qualified free fn. Candidate modules, most specific first:
    // the full path mapped through the crate-prefix table, a same-crate
    // sibling module, and a `use`-imported module alias.
    let file = &sources[file_idx];
    let mut candidates: Vec<String> = Vec::new();
    if let Some(root) = crate::symbols::resolve_path_root(&segs[0], &file.crate_name) {
        let rest = &segs[1..];
        if rest.is_empty() {
            candidates.push(root);
        } else {
            candidates.push(format!("{root}::{}", rest.join("::")));
        }
    }
    candidates.push(format!("{}::{}", file.crate_name, segs.join("::")));
    if segs.len() == 1 {
        if let Some(target) = table.uses[file_idx].get(last) {
            if let Some(m) = &target.module {
                candidates.push(format!("{m}::{}", target.item));
            }
        }
    }
    for m in candidates {
        if let Some(&id) = table.free_by_module.get(&(m, name.to_string())) {
            return Some(id);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Context;

    fn graph(files: &[(&str, &str, &str)]) -> (Vec<SourceFile>, SymbolTable, CallGraph) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(cr, m, src)| {
                SourceFile::parse(format!("{m}.rs"), *cr, *m, Context::Lib, src)
            })
            .collect();
        let table = SymbolTable::build(&sources);
        let cg = CallGraph::build(&sources, &table);
        (sources, table, cg)
    }

    fn callee_names(table: &SymbolTable, cg: &CallGraph, caller: &str) -> Vec<String> {
        let id = table
            .fns
            .iter()
            .position(|d| d.name == caller)
            .expect("caller");
        cg.calls[id]
            .values()
            .map(|s| table.fns[s.callee].name.clone())
            .collect()
    }

    #[test]
    fn same_module_and_cross_crate_calls_resolve() {
        let (_, table, cg) = graph(&[
            (
                "mpc",
                "mpc::share",
                "pub fn helper(x: u64) -> u64 { x }\n\
                 pub fn caller() -> u64 { helper(3) }\n",
            ),
            (
                "core",
                "core::serve",
                "use psml_mpc::share::helper;\n\
                 fn use_import() -> u64 { helper(1) }\n\
                 fn use_path() -> u64 { psml_mpc::share::helper(2) }\n",
            ),
        ]);
        assert_eq!(callee_names(&table, &cg, "caller"), vec!["helper"]);
        assert_eq!(callee_names(&table, &cg, "use_import"), vec!["helper"]);
        assert_eq!(callee_names(&table, &cg, "use_path"), vec!["helper"]);
    }

    #[test]
    fn method_calls_resolve_via_self_and_unique_name() {
        let (_, table, cg) = graph(&[(
            "mpc",
            "mpc::share",
            "struct S { v: u64 }\n\
             impl S {\n\
               fn only_here(&self) -> u64 { self.v }\n\
               fn m(&self) -> u64 { self.only_here() }\n\
             }\n\
             fn free(s: &S) -> u64 { s.only_here() }\n",
        )]);
        assert_eq!(callee_names(&table, &cg, "m"), vec!["only_here"]);
        assert_eq!(callee_names(&table, &cg, "free"), vec!["only_here"]);
    }

    #[test]
    fn ambiguous_methods_stay_unresolved() {
        let (_, table, cg) = graph(&[(
            "mpc",
            "mpc::share",
            "struct A; struct B;\n\
             impl A { fn go(&self) {} }\n\
             impl B { fn go(&self) {} }\n\
             fn f(a: &A) { a.go() }\n",
        )]);
        assert!(callee_names(&table, &cg, "f").is_empty());
    }

    #[test]
    fn type_method_paths_resolve() {
        let (_, table, cg) = graph(&[(
            "mpc",
            "mpc::share",
            "struct S;\n\
             impl S { fn make() -> S { S } }\n\
             fn f() -> S { S::make() }\n",
        )]);
        assert_eq!(callee_names(&table, &cg, "f"), vec!["make"]);
    }

    #[test]
    fn arg_ranges_split_top_level_commas() {
        let f = SourceFile::parse(
            "a.rs",
            "c",
            "c::m",
            Context::Lib,
            "fn f() { g(a, h(b, c), d) }",
        );
        let open = f.toks.iter().position(|t| t.text == "g").unwrap() + 1;
        assert_eq!(f.toks[open].text, "(");
        let ranges = CallGraph::arg_ranges(&f.toks, open);
        assert_eq!(ranges.len(), 3);
    }
}

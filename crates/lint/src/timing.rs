//! Timing discipline for the online path.
//!
//! The paper's triplet protocol assumes data-oblivious servers: whatever
//! the shares hold, both servers execute the same instruction stream.
//! Inside [`crate::config::TIMING_MODULES`] this pass therefore flags
//! control flow (`if`/`while`/`match`, short-circuit `&&`/`||`) and
//! data-dependent memory access (indexing) conditioned on secret-derived
//! values, using the taint environments from the inter-procedural pass.
//!
//! A site can be suppressed with `// psml-lint: allow(timing, "reason")`
//! on the same line or the line directly above — but only with a
//! non-empty justification string; a bare `allow(timing)` trades the
//! original finding for `timing.allow-unjustified`, so the gate stays
//! red until someone writes down *why* the branched value is public.

use crate::callgraph::CallGraph;
use crate::config::TIMING_MODULES;
use crate::findings::{Evidence, Finding, RuleId};
use crate::lexer::{Tok, TokKind};
use crate::rules::SecretRegistry;
use crate::source::{module_in, SourceFile};
use crate::symbols::{skip_balanced, tok_is, SymbolTable};
use crate::taint::{chain_taint, TaintAnalysis};
use std::collections::BTreeSet;

/// Runs the timing rules over every function in an online-path module.
pub fn run(
    sources: &[SourceFile],
    table: &SymbolTable,
    cg: &CallGraph,
    secrets: &SecretRegistry,
    ta: &TaintAnalysis,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut reported: BTreeSet<(String, u32, RuleId)> = BTreeSet::new();
    let mut unjustified: BTreeSet<(String, u32)> = BTreeSet::new();
    for (id, d) in table.fns.iter().enumerate() {
        let f = &sources[d.file];
        if !module_in(&f.module, TIMING_MODULES) {
            continue;
        }
        let Some((open, end)) = d.body else { continue };
        let t = &f.toks;
        let env = &ta.env[id];
        let sites = &cg.calls[id];
        let taint_at = |k: usize| chain_taint(f, k, env, secrets, sites, &ta.summaries);

        // Condition ranges: `if`/`while` to the block opener, `match`
        // scrutinees, and the statement around short-circuit operators.
        let mut cond_ranges: Vec<(usize, usize, &'static str)> = Vec::new();
        let mut j = open + 1;
        while j + 1 < end {
            match t[j].text.as_str() {
                "if" | "while" | "match" if t[j].kind == TokKind::Ident => {
                    let kind = if t[j].text == "match" { "match" } else { "branch" };
                    let mut depth = 0i64;
                    let mut e = j + 1;
                    while e < end {
                        match t[e].text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break,
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        e += 1;
                    }
                    cond_ranges.push((j + 1, e, kind));
                }
                "&" | "|"
                    if tok_is(t, j + 1, &t[j].text)
                        && j >= 1
                        && is_operand_end(&t[j - 1]) =>
                {
                    // Short-circuit operator: its evaluation count is
                    // itself a branch. Scan the surrounding statement.
                    let (a, b) = statement_around(t, j, open, end);
                    cond_ranges.push((a, b, "short-circuit"));
                }
                _ => {}
            }
            j += 1;
        }
        for (a, b, kind) in cond_ranges {
            for k in a..b {
                if t[k].kind != TokKind::Ident {
                    continue;
                }
                if k >= 1 && t[k - 1].text == "." {
                    continue;
                }
                let Some(taint) = taint_at(k) else { continue };
                let line = t[k].line;
                if f.is_test_line(line) {
                    continue;
                }
                emit(
                    f,
                    RuleId::TimingBranchOnSecret,
                    line,
                    format!(
                        "{kind} on secret-derived `{}` in online-path `{}`; make the control flow data-oblivious",
                        t[k].text, f.module
                    ),
                    taint.src,
                    &mut findings,
                    &mut reported,
                    &mut unjustified,
                );
            }
        }

        // Data-dependent indexing: `expr[ secret ]`.
        let mut j = open + 1;
        while j + 1 < end {
            if t[j].text == "["
                && j >= 1
                && is_operand_end(&t[j - 1])
                && t[j - 1].text != "#"
                && !crate::callgraph::KEYWORDS.contains(&t[j - 1].text.as_str())
            {
                let close = skip_balanced(t, j, "[", "]");
                for k in j + 1..close.saturating_sub(1) {
                    if t[k].kind != TokKind::Ident || (k >= 1 && t[k - 1].text == ".") {
                        continue;
                    }
                    let Some(taint) = taint_at(k) else { continue };
                    let line = t[k].line;
                    if f.is_test_line(line) {
                        continue;
                    }
                    emit(
                        f,
                        RuleId::TimingSecretIndex,
                        line,
                        format!(
                            "index derived from secret `{}` in online-path `{}`; memory access patterns must not depend on secrets",
                            t[k].text, f.module
                        ),
                        taint.src,
                        &mut findings,
                        &mut reported,
                        &mut unjustified,
                    );
                }
                j = close;
                continue;
            }
            j += 1;
        }
    }
    findings
}

/// Whether a token can end the left operand of a binary operator
/// (distinguishing `a && b` from the double reference `&&b` and closure
/// pipes).
fn is_operand_end(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Ident | TokKind::Num | TokKind::Str | TokKind::Char)
        || matches!(t.text.as_str(), ")" | "]" | "?")
}

/// The statement slice around token `j`: back to the nearest `;`/`{`/`}`
/// and forward to the nearest `;` or block opener.
fn statement_around(t: &[Tok], j: usize, open: usize, end: usize) -> (usize, usize) {
    let mut a = j;
    while a > open + 1 {
        match t[a - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => a -= 1,
        }
    }
    let mut b = j;
    let mut depth = 0i64;
    while b < end {
        match t[b].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            ";" if depth == 0 => break,
            _ => {}
        }
        b += 1;
    }
    (a, b)
}

/// The suppression state of `line`: `None` (no allow comment),
/// `Some(true)` (justified), `Some(false)` (allow without justification).
fn suppression(f: &SourceFile, line: u32) -> Option<(bool, u32)> {
    for c in &f.comments {
        let covers = (c.line <= line && line <= c.end_line) || c.end_line + 1 == line;
        if !covers {
            continue;
        }
        let Some(idx) = c.text.find("psml-lint:") else { continue };
        let rest = &c.text[idx..];
        let Some(a) = rest.find("allow(") else { continue };
        let inner = &rest[a + "allow(".len()..];
        let Some(close) = inner.find(')') else { continue };
        let body = &inner[..close];
        let family = body.split(',').next().unwrap_or("").trim();
        if family != "timing" {
            continue;
        }
        let justified = body
            .split_once(',')
            .map(|(_, reason)| {
                let r = reason.trim();
                r.len() > 2
                    && r.starts_with('"')
                    && r.ends_with('"')
                    && !r.trim_matches('"').trim().is_empty()
            })
            .unwrap_or(false);
        return Some((justified, c.line));
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn emit(
    f: &SourceFile,
    rule: RuleId,
    line: u32,
    message: String,
    evidence: Vec<Evidence>,
    findings: &mut Vec<Finding>,
    reported: &mut BTreeSet<(String, u32, RuleId)>,
    unjustified: &mut BTreeSet<(String, u32)>,
) {
    match suppression(f, line) {
        Some((true, _)) => {}
        Some((false, comment_line)) => {
            // The suppression itself is the finding: the gate stays red
            // until a justification is written.
            if unjustified.insert((f.path.clone(), comment_line)) {
                findings.push(Finding::new(
                    RuleId::TimingAllowUnjustified,
                    &f.path,
                    comment_line,
                    "allow(timing) without a justification string — write down why the value is public".into(),
                    f.line_text(comment_line),
                ));
            }
        }
        None => {
            if reported.insert((f.path.clone(), line, rule)) {
                let mut fin = Finding::new(rule, &f.path, line, message, f.line_text(line));
                fin.evidence = evidence;
                findings.push(fin);
            }
        }
    }
}

//! Property-based tests for the lexer's line accounting.
//!
//! Every rule in this crate reports findings *by line*, and the dataflow
//! passes match suppression comments by line — so a lexer that drifts
//! even one line after a tricky literal (raw string, escaped newline,
//! nested block comment) silently mislabels every finding below it.
//! These properties pin the accounting against a ground truth computed
//! directly from the generated source text.

use crate::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Fragment palette: each entry is a line-accounting hazard. The expected
/// newline count is *derived* from the text, so the palette can grow
/// without touching the checking logic.
const FRAGMENTS: &[&str] = &[
    "let a = 1;",
    "let s = \"esc \\\" quote\";",
    "let s = \"cont \\\n rest\";",
    "let r = r#\"raw \" x\"#;",
    "let r = r##\"raw \"# y\"##;",
    "let m = r#\"multi\nline\"#;",
    "/* nested /* deep\n */ out\n*/",
    "// trailing comment",
    "let c = '\\n'; let l: &'static str = \"x\";",
    "let b = b\"bytes\"; let bc = b'\\\\';",
    "let t = 'x'; let lt = 'a';",
];

proptest! {
    /// Interleaves arbitrary hazard fragments with uniquely named marker
    /// identifiers and checks that the lexer reports each marker on
    /// exactly the line the construction placed it on.
    #[test]
    fn token_lines_match_ground_truth(
        picks in prop::collection::vec(prop::sample::select((0..FRAGMENTS.len()).collect::<Vec<_>>()), 1..12)
    ) {
        let mut src = String::new();
        let mut line = 1u32;
        let mut expected: Vec<(String, u32)> = Vec::new();
        for (i, &pick) in picks.iter().enumerate() {
            let frag = FRAGMENTS[pick];
            src.push_str(frag);
            line += frag.matches('\n').count() as u32;
            src.push('\n');
            line += 1;
            let marker = format!("zmarker{i}");
            src.push_str(&marker);
            expected.push((marker, line));
            src.push('\n');
            line += 1;
        }
        let lexed = lex(&src);
        for (marker, want) in &expected {
            let tok = lexed
                .toks
                .iter()
                .find(|t| t.kind == TokKind::Ident && &t.text == marker);
            prop_assert!(tok.is_some(), "marker {marker} lost by the lexer");
            prop_assert_eq!(tok.unwrap().line, *want, "marker {} drifted", marker);
        }
        // Comments were stripped, with sane spans.
        let total_lines = 1 + src.matches('\n').count() as u32;
        for c in &lexed.comments {
            prop_assert!(c.line <= c.end_line && c.end_line <= total_lines);
        }
    }

    /// The lexer is total over arbitrary byte soup: it never panics, token
    /// lines are nondecreasing, and no token claims a line past the file's
    /// actual newline count.
    #[test]
    fn arbitrary_bytes_lex_with_monotone_lines(
        words in prop::collection::vec(any::<u64>(), 0..24)
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        let total_lines = 1 + src.matches('\n').count() as u32;
        let mut prev = 1u32;
        for t in &lexed.toks {
            prop_assert!(t.line >= prev, "token lines went backwards");
            prop_assert!(t.line <= total_lines, "token past end of file");
            prev = t.line;
        }
    }
}

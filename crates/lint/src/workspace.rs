//! Workspace discovery: finds every `.rs` file the analyzer owns, assigns
//! its crate/module identity and build context, and runs both the
//! per-file rules and the whole-workspace dataflow passes (symbol table,
//! call graph, inter-procedural taint, timing, concurrency).

use crate::callgraph::CallGraph;
use crate::findings::Report;
use crate::rules::{self, SecretRegistry};
use crate::source::{Context, SourceFile};
use crate::symbols::SymbolTable;
use crate::{concurrency, taint, timing};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One discovered file before lexing.
struct Discovered {
    abs: PathBuf,
    rel: String,
    crate_name: String,
    module: String,
    context: Context,
}

/// Scans the workspace rooted at `root` and returns the full report.
///
/// Layout knowledge: member crates live in `crates/<name>` (module paths
/// are `<name>::<src-relative path>`), the umbrella crate is `src/` +
/// `tests/` + `examples/` at the root (crate name `suite`). `target/` and
/// the lint fixture corpus are never scanned — fixtures contain seeded
/// violations by design.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            discover_crate(root, &dir, &crate_name, &mut files)?;
        }
    }
    // Workspace umbrella crate.
    discover_tree(root, &root.join("src"), "suite", Context::Lib, &mut files)?;
    discover_tree(root, &root.join("tests"), "suite", Context::Test, &mut files)?;
    discover_tree(root, &root.join("examples"), "suite", Context::Example, &mut files)?;

    // Parse everything, then run two passes: marker collection (the secret
    // registry must be complete before any secrecy scan), then the rules.
    let mut sources = Vec::new();
    for d in files {
        let text = fs::read_to_string(&d.abs)?;
        sources.push(SourceFile::parse(
            d.rel, d.crate_name, d.module, d.context, &text,
        ));
    }
    Ok(lint_sources(root, sources))
}

/// Runs the rules over already-parsed sources (entry point for tests):
/// the per-file token-pattern families first, then the workspace-wide
/// dataflow passes over one shared symbol table and call graph.
pub fn lint_sources(root: &Path, sources: Vec<SourceFile>) -> Report {
    let mut secrets = SecretRegistry::default();
    for s in &sources {
        secrets.collect(s);
    }
    let mut report = Report {
        root: root.display().to_string(),
        files_scanned: sources.len(),
        findings: Vec::new(),
    };
    for s in &sources {
        report.findings.extend(rules::lint_file(s, &secrets));
        if is_crate_root(s) {
            report.findings.extend(rules::crate_policy(s));
        }
    }
    let table = SymbolTable::build(&sources);
    let cg = CallGraph::build(&sources, &table);
    let (analysis, cross_findings) = taint::analyze(&sources, &table, &cg, &secrets);
    report.findings.extend(cross_findings);
    report
        .findings
        .extend(timing::run(&sources, &table, &cg, &secrets, &analysis));
    report.findings.extend(concurrency::run(&sources, &table, &cg));
    report.sort();
    report
}

fn is_crate_root(s: &SourceFile) -> bool {
    s.context == Context::Lib && s.module == s.crate_name && s.path.ends_with("lib.rs")
}

/// Discovers the standard target trees of one member crate.
fn discover_crate(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<Discovered>,
) -> io::Result<()> {
    // The experiment harness crate is measurement code end to end; its
    // whole tree is bench context (wall clock and ad-hoc seeds are its
    // trade).
    let lib_ctx = if crate_name == "bench" {
        Context::Bench
    } else {
        Context::Lib
    };
    discover_tree(root, &dir.join("src"), crate_name, lib_ctx, out)?;
    discover_tree(root, &dir.join("benches"), crate_name, Context::Bench, out)?;
    discover_tree(root, &dir.join("tests"), crate_name, Context::Test, out)?;
    discover_tree(root, &dir.join("examples"), crate_name, Context::Example, out)?;
    Ok(())
}

/// Recursively collects `.rs` files under `tree`, assigning module paths
/// from the tree-relative location.
fn discover_tree(
    root: &Path,
    tree: &Path,
    crate_name: &str,
    base_ctx: Context,
    out: &mut Vec<Discovered>,
) -> io::Result<()> {
    if !tree.is_dir() {
        return Ok(());
    }
    let mut stack = vec![tree.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                // Never descend into fixture corpora or build output.
                if name != "fixtures" && name != "target" {
                    stack.push(path);
                }
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let rel_tree = path
                .strip_prefix(tree)
                .expect("walk stays under tree")
                .with_extension("");
            let comps: Vec<String> = rel_tree
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            let mut context = base_ctx;
            // `src/bin/*` are binary targets; property-test modules are
            // compiled only under cfg(test).
            if comps.first().map(String::as_str) == Some("bin") {
                context = Context::Bin;
            }
            if name == "proptests.rs" {
                context = Context::Test;
            }
            let module = module_path(crate_name, &comps);
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            out.push(Discovered {
                abs: path,
                rel,
                crate_name: crate_name.to_string(),
                module,
                context,
            });
        }
    }
    Ok(())
}

/// `["gemm"]` -> `tensor::gemm`; `["lib"]` -> `tensor`;
/// `["bin", "psml"]` -> `core::bin::psml`; `["sub", "mod"]` -> `c::sub`.
fn module_path(crate_name: &str, comps: &[String]) -> String {
    let mut parts: Vec<&str> = vec![crate_name];
    for (i, c) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        if last && (c == "lib" || c == "main" || c == "mod") {
            continue;
        }
        parts.push(c);
    }
    parts.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn module_paths() {
        assert_eq!(module_path("tensor", &strs(&["lib"])), "tensor");
        assert_eq!(module_path("tensor", &strs(&["gemm"])), "tensor::gemm");
        assert_eq!(
            module_path("core", &strs(&["bin", "psml"])),
            "core::bin::psml"
        );
        assert_eq!(module_path("c", &strs(&["sub", "mod"])), "c::sub");
    }

    #[test]
    fn live_workspace_scan_finds_files() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let report = lint_workspace(root).expect("scan succeeds");
        assert!(
            report.files_scanned > 50,
            "expected a real workspace, scanned {}",
            report.files_scanned
        );
    }
}

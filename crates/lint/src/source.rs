//! A lexed source file plus the workspace identity the rules key on.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// How a file participates in the build — rules exempt non-production
/// contexts (tests may print secrets they made up; benches may read the
/// wall clock).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Context {
    /// Library code — every rule applies.
    Lib,
    /// Binary target (`src/bin/*`).
    Bin,
    /// Test code (`tests/`, `proptests.rs`).
    Test,
    /// Benchmark code (`benches/`, the `bench` harness crate).
    Bench,
    /// Example (`examples/`).
    Example,
}

impl Context {
    /// Whether the file is production (protocol-reachable) code.
    pub fn is_production(self) -> bool {
        matches!(self, Context::Lib | Context::Bin)
    }
}

/// One lexed file, addressable by its module path (e.g. `tensor::gemm`).
pub struct SourceFile {
    /// Root-relative display path.
    pub path: String,
    /// Owning crate (directory name under `crates/`, or `suite` for the
    /// workspace umbrella).
    pub crate_name: String,
    /// `crate::module` path derived from the file location; the crate root
    /// file is just the crate name.
    pub module: String,
    /// Build context.
    pub context: Context,
    /// Raw source lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// Significant tokens.
    pub toks: Vec<Tok>,
    /// Stripped comments.
    pub comments: Vec<Comment>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` under the given identity.
    pub fn parse(
        path: impl Into<String>,
        crate_name: impl Into<String>,
        module: impl Into<String>,
        context: Context,
        text: &str,
    ) -> Self {
        let lexed = lex(text);
        let mut f = SourceFile {
            path: path.into(),
            crate_name: crate_name.into(),
            module: module.into(),
            context,
            lines: text.lines().map(str::to_owned).collect(),
            toks: lexed.toks,
            comments: lexed.comments,
            test_spans: Vec::new(),
        };
        f.test_spans = find_test_spans(&f.toks);
        f
    }

    /// Raw text of 1-based `line` (empty for out-of-range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// Whether `line` is inside a `#[cfg(test)]` item or the whole file is
    /// test/bench/example context.
    pub fn is_test_line(&self, line: u32) -> bool {
        !self.context.is_production()
            || self
                .test_spans
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Finds line spans of items guarded by `#[cfg(test)]` (or `cfg(all(test,
/// ...))` etc. — any cfg predicate naming `test` without `not`).
fn find_test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && toks.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            // Collect idents inside the attribute brackets.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if toks[j].kind == TokKind::Ident {
                            idents.push(&toks[j].text);
                        }
                    }
                }
                j += 1;
            }
            let is_test_cfg = idents.contains(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not");
            if is_test_cfg {
                // Skip any further attributes, then span the item body:
                // the first `{ ... }` block, or up to `;` for a bodyless
                // item (`#[cfg(test)] mod tests;`).
                let mut k = j;
                while k + 1 < toks.len()
                    && toks[k].text == "#"
                    && toks[k + 1].text == "["
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let start_line = toks[i].line;
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let mut d = 1usize;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                let end_line = toks
                    .get(k.saturating_sub(1))
                    .or_else(|| toks.last())
                    .map(|t| t.line)
                    .unwrap_or(start_line);
                spans.push((start_line, end_line));
                i = k;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// Matches a module path against an allowlist pattern: either an exact
/// path (`tensor::gemm`) or a crate-wide wildcard (`parallel::*`, which
/// also matches the crate root module `parallel`).
pub fn module_matches(module: &str, pattern: &str) -> bool {
    match pattern.strip_suffix("::*") {
        Some(prefix) => {
            module == prefix
                || (module.starts_with(prefix)
                    && module[prefix.len()..].starts_with("::"))
        }
        None => module == pattern,
    }
}

/// Whether `module` matches any pattern in `patterns`.
pub fn module_in(module: &str, patterns: &[&str]) -> bool {
    patterns.iter().any(|p| module_matches(module, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", "c", "c::x", Context::Lib, src);
        assert_eq!(f.test_spans, vec![(2, 5)]);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\nmod live {\n  fn f() {}\n}\n";
        let f = SourceFile::parse("x.rs", "c", "c::x", Context::Lib, src);
        assert!(f.test_spans.is_empty());
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod t {\n fn f() {}\n}\n";
        let f = SourceFile::parse("x.rs", "c", "c::x", Context::Lib, src);
        assert_eq!(f.test_spans, vec![(1, 4)]);
    }

    #[test]
    fn non_production_contexts_are_all_test() {
        let f = SourceFile::parse("b.rs", "c", "c::b", Context::Bench, "fn f() {}");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn module_patterns() {
        assert!(module_matches("tensor::gemm", "tensor::gemm"));
        assert!(!module_matches("tensor::gemm2", "tensor::gemm"));
        assert!(module_matches("parallel", "parallel::*"));
        assert!(module_matches("parallel::pool", "parallel::*"));
        assert!(!module_matches("parallel2::pool", "parallel::*"));
        assert!(module_in("mpc::triple", &["datasets::*", "mpc::triple"]));
    }
}

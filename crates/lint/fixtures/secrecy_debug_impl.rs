//@ crate: core
//@ module: core::models
//@ context: lib
//@ expect: secrecy.debug-impl-outside-redaction@8

use std::fmt;

impl fmt::Debug for SharePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharePair").finish_non_exhaustive()
    }
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: secrecy.format-leak@7

pub fn leak(pair: &SharePair) -> String {
    format!("{:?}", pair)
}

//@ crate: core
//@ module: core::serve
//@ context: lib
//@ expect: secrecy.cross-function-leak@27

//! Seeded cross-function leak: the secret is minted two calls away from
//! the sink, so no single statement both names a secret type and formats
//! it — exactly the shape the v1 file-granular taint provably misses.

#[doc = "psml-secret"]
pub struct LimbVec {
    pub limbs: Vec<u64>,
    pub rows: usize,
}

fn mint() -> LimbVec {
    LimbVec { limbs: vec![7], rows: 1 }
}

fn first_limb() -> u64 {
    let p = mint();
    p.limbs[0]
}

pub fn audit() {
    let l = first_limb();
    println!("leaked limb {l}");
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: timing.secret-index@16

//! Memory access pattern keyed on a secret-derived index.

#[doc = "psml-secret"]
pub struct ShareBuf {
    pub data: Vec<u64>,
    pub rows: usize,
}

pub fn gather(s: &ShareBuf, table: &[u64]) -> u64 {
    let idx = s.data[0] as usize;
    table[idx]
}

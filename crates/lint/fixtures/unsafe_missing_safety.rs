//@ crate: tensor
//@ module: tensor::gemm
//@ context: lib
//@ expect: unsafe.missing-safety-comment@8

pub fn head(xs: &[f32]) -> f32 {
    let p = xs.as_ptr();
    unsafe { *p }
}

//@ crate: core
//@ module: core::provider
//@ context: lib
//@ expect: concurrency.recv-under-lock@14

//! Blocking channel receive while holding a mutex guard: a sender that
//! needs the same lock can never run, so the receive never completes.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub fn drain(m: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {
    let g = m.lock().unwrap();
    let v = rx.recv().unwrap();
    *g + v
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: rng.construction-not-sanctioned@7

pub fn bad_seed(seed: u32) -> Mt19937 {
    Mt19937::new(seed)
}

//@ crate: mpc
//@ module: mpc::online
//@ context: lib
//@ expect: timing.allow-unjustified@22

//! Suppression-comment policy: a justified allow silences the branch
//! finding; a bare allow is itself a (different) finding, so the gate
//! stays red until the justification is written down.

#[doc = "psml-secret"]
pub struct MaskedBit {
    pub b: u64,
    pub rows: usize,
}

pub fn justified(m: &MaskedBit) -> u64 {
    // psml-lint: allow(timing, "b is re-randomized before this check")
    if m.b == 0 { 1 } else { 0 }
}

pub fn unjustified(m: &MaskedBit) -> u64 {
    // psml-lint: allow(timing)
    if m.b == 0 { 1 } else { 0 }
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: determinism.hashmap-iteration@11
//@ expect: determinism.hashmap-iteration@14

use std::collections::HashMap;

pub fn bad_iter(sites: &HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in sites.iter() {
        total += v;
    }
    for (_k, v) in sites {
        total += v;
    }
    total
}

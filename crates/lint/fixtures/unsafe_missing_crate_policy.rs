//@ crate: trace
//@ module: trace
//@ context: lib
//@ crate-root
//@ expect: unsafe.missing-crate-policy@1

pub fn emit() {}

//@ crate: mpc
//@ module: mpc::online
//@ context: lib
//@ expect: timing.branch-on-secret@15

//! Branch on a secret-derived value in an online-path module.

#[doc = "psml-secret"]
pub struct MaskedVal {
    pub v: u64,
    pub rows: usize,
}

pub fn step(m: &MaskedVal) -> u64 {
    if m.v > 7 {
        1
    } else {
        0
    }
}

//@ crate: parallel
//@ module: parallel::pool
//@ context: lib
//@ expect: concurrency.lock-order-inversion@26

//! Two functions acquire the same pair of locks in opposite orders; the
//! finding lands on the lexicographically inverted edge (`beta` before
//! `alpha`) so the report is deterministic no matter which function the
//! walk sees first.

use std::sync::Mutex;

pub struct Queues {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn forward(q: &Queues) {
    let a = q.alpha.lock().unwrap();
    let b = q.beta.lock().unwrap();
    let _ = *a + *b;
}

pub fn backward(q: &Queues) {
    let b = q.beta.lock().unwrap();
    let a = q.alpha.lock().unwrap();
    let _ = *a + *b;
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: rng.fault-rng-reference@7

pub fn bad_fault(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}

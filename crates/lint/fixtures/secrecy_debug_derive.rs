//@ crate: core
//@ module: core::models
//@ context: lib
//@ expect: secrecy.debug-derive@8

/// A locally-declared masked buffer, registered via the marker attribute.
#[doc = "psml-secret"]
#[derive(Clone, Debug)]
pub struct MaskedBlock {
    limbs: Vec<u64>,
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: determinism.wall-clock@7

pub fn bad_clock() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//@ expect: unsafe.module-not-allowlisted@9

pub fn head(xs: &[f32]) -> f32 {
    let p = xs.as_ptr();
    // SAFETY: xs is non-empty by contract; reading element 0 is in bounds.
    unsafe { *p }
}

//@ crate: core
//@ module: core::engine
//@ context: lib
//
// Clean protocol-path file: ordered maps, metadata-only formatting, no
// unsafe, no wall clock. Must produce zero findings.

use std::collections::BTreeMap;

pub fn schedule(pair: &SharePair, sites: &BTreeMap<u32, u64>) -> String {
    let mut total = 0u64;
    for (_site, cost) in sites {
        total += cost;
    }
    format!("pair {:?} total {total}", pair.shape())
}

#![forbid(unsafe_code)]
//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on MNIST, VGGFace2, NIST fingerprints, CIFAR-10 and
//! a SYNTHETIC matrix workload. Those downloads are unavailable offline, and
//! nothing in the evaluation depends on the *semantic* content of the
//! images — only on their **shapes** (which set every matrix dimension),
//! their **value ranges**, their **sparsity** (which drives the compressed
//! transmission results), and the existence of **learnable structure**
//! (labels follow a hidden linear model, so training actually converges).
//!
//! Each generator is deterministic in `(dataset, seed, sample index)`.
//!
//! | Stand-in    | Shape       | Samples | Character                        |
//! |-------------|-------------|---------|----------------------------------|
//! | `Mnist`     | 1x28x28     | 60 000  | sparse strokes (~80 % zeros)     |
//! | `VggFace2`  | 1x200x200   | 40 000  | dense smooth gradients           |
//! | `Nist`      | 1x512x512   | 4 000   | ridge (sinusoidal) patterns      |
//! | `Cifar10`   | 3x32x32     | 50 000  | dense correlated color noise     |
//! | `Synthetic` | 32x64 flat  | 640 000 | uniform random matrices          |

use psml_parallel::Mt19937;
use psml_tensor::Matrix;

/// Which workload to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 28x28 handwritten-digit stand-in (sparse strokes).
    Mnist,
    /// 200x200 face-crop stand-in (dense, smooth).
    VggFace2,
    /// 512x512 fingerprint stand-in (ridge patterns).
    Nist,
    /// 3-channel 32x32 natural-image stand-in.
    Cifar10,
    /// The paper's SYNTHETIC workload: 32x64 random matrices.
    Synthetic,
}

/// Static description of a dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Display name (paper's name).
    pub name: &'static str,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes for classification tasks.
    pub classes: usize,
    /// Nominal training-set size.
    pub train_samples: usize,
}

impl DatasetSpec {
    /// Flattened feature count (`channels * height * width`).
    pub fn features(&self) -> usize {
        self.channels * self.height * self.width
    }
}

impl DatasetKind {
    /// Every dataset in the paper's evaluation order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::VggFace2,
        DatasetKind::Nist,
        DatasetKind::Synthetic,
        DatasetKind::Mnist,
        DatasetKind::Cifar10,
    ];

    /// The dataset's static description.
    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetKind::Mnist => DatasetSpec {
                name: "MNIST",
                channels: 1,
                height: 28,
                width: 28,
                classes: 10,
                train_samples: 60_000,
            },
            DatasetKind::VggFace2 => DatasetSpec {
                name: "VGGFace2",
                channels: 1,
                height: 200,
                width: 200,
                classes: 10,
                train_samples: 40_000,
            },
            DatasetKind::Nist => DatasetSpec {
                name: "NIST",
                channels: 1,
                height: 512,
                width: 512,
                classes: 10,
                train_samples: 4_000,
            },
            DatasetKind::Cifar10 => DatasetSpec {
                name: "CIFAR-10",
                channels: 3,
                height: 32,
                width: 32,
                classes: 10,
                train_samples: 50_000,
            },
            DatasetKind::Synthetic => DatasetSpec {
                name: "SYNTHETIC",
                channels: 1,
                height: 32,
                width: 64,
                classes: 10,
                train_samples: 640_000,
            },
        }
    }

    /// Generates sample `idx` as a `channels x (height*width)` matrix with
    /// values in `[0, 1]`.
    pub fn sample_image(self, idx: usize, seed: u32) -> Matrix<f64> {
        let spec = self.spec();
        let mut rng = sample_rng(self, idx, seed);
        match self {
            DatasetKind::Mnist => strokes(&spec, &mut rng),
            DatasetKind::VggFace2 => smooth_gradients(&spec, &mut rng),
            DatasetKind::Nist => ridges(&spec, &mut rng),
            DatasetKind::Cifar10 => correlated_color(&spec, &mut rng),
            DatasetKind::Synthetic => uniform(&spec, &mut rng),
        }
    }

    /// The hidden class of sample `idx` under the dataset's latent linear
    /// model — labels are a deterministic function of the image content, so
    /// models can actually fit them.
    pub fn sample_label(self, idx: usize, seed: u32) -> usize {
        let spec = self.spec();
        let img = self.sample_image(idx, seed);
        latent_class(&img, spec.classes, seed)
    }
}

/// A mini-batch: flattened features (`batch x features`), one-hot labels
/// (`batch x classes`) and scalar regression targets (`batch x 1`,
/// in `[0, 1]`, derived from the label).
#[derive(Clone, Debug)]
pub struct Batch {
    /// Flattened inputs, one sample per row.
    pub x: Matrix<f64>,
    /// One-hot class labels.
    pub y_onehot: Matrix<f64>,
    /// Scalar targets for regression tasks.
    pub y_scalar: Matrix<f64>,
}

/// Generates batch `batch_idx` of `batch_size` samples.
pub fn batch(kind: DatasetKind, batch_size: usize, batch_idx: usize, seed: u32) -> Batch {
    let spec = kind.spec();
    let features = spec.features();
    let mut x = Matrix::zeros(batch_size, features);
    let mut y_onehot = Matrix::zeros(batch_size, spec.classes);
    let mut y_scalar = Matrix::zeros(batch_size, 1);
    for b in 0..batch_size {
        let idx = batch_idx * batch_size + b;
        let img = kind.sample_image(idx, seed);
        x.row_mut(b).copy_from_slice(img.as_slice());
        let label = latent_class(&img, spec.classes, seed);
        y_onehot[(b, label)] = 1.0;
        y_scalar[(b, 0)] = (label as f64 + 0.5) / spec.classes as f64;
    }
    Batch {
        x,
        y_onehot,
        y_scalar,
    }
}

fn sample_rng(kind: DatasetKind, idx: usize, seed: u32) -> Mt19937 {
    let k = match kind {
        DatasetKind::Mnist => 1u32,
        DatasetKind::VggFace2 => 2,
        DatasetKind::Nist => 3,
        DatasetKind::Cifar10 => 4,
        DatasetKind::Synthetic => 5,
    };
    Mt19937::new(
        seed.wrapping_mul(0x9E37_79B9)
            .wrapping_add(k.wrapping_mul(0x85EB_CA6B))
            .wrapping_add(idx as u32),
    )
}

/// Class = argmax over `classes` fixed random hyperplanes (seeded, shared
/// across samples), giving a linearly separable labeling.
fn latent_class(img: &Matrix<f64>, classes: usize, seed: u32) -> usize {
    let features = img.len();
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for c in 0..classes {
        let mut w = Mt19937::new(seed ^ (0xC1A5_5000 + c as u32));
        let mut score = 0.0;
        // Project onto a sparse random hyperplane (every 7th feature) so
        // huge images stay cheap to label.
        let mut i = 0;
        while i < features {
            score += (w.next_f64() - 0.5) * img.as_slice()[i];
            i += 7;
        }
        if score > best_score {
            best_score = score;
            best = c;
        }
    }
    best
}

/// MNIST-like: black background, a handful of random strokes.
fn strokes(spec: &DatasetSpec, rng: &mut Mt19937) -> Matrix<f64> {
    let (h, w) = (spec.height, spec.width);
    let mut img = Matrix::zeros(1, h * w);
    let strokes = 3 + (rng.next_u32() % 3) as usize;
    for _ in 0..strokes {
        let mut y = (rng.next_u32() as usize) % h;
        let mut x = (rng.next_u32() as usize) % w;
        let len = 8 + (rng.next_u32() as usize) % 12;
        for _ in 0..len {
            img[(0, y * w + x)] = 0.5 + 0.5 * rng.next_f64();
            // Thicken the stroke one pixel to the right.
            if x + 1 < w {
                img[(0, y * w + x + 1)] = 0.3 + 0.4 * rng.next_f64();
            }
            match rng.next_u32() % 4 {
                0 if y + 1 < h => y += 1,
                1 if y > 0 => y -= 1,
                2 if x + 1 < w => x += 1,
                _ if x > 0 => x -= 1,
                _ => {}
            }
        }
    }
    img
}

/// Face-like: sum of a few smooth 2-D gradients (dense, no zeros).
fn smooth_gradients(spec: &DatasetSpec, rng: &mut Mt19937) -> Matrix<f64> {
    let (h, w) = (spec.height, spec.width);
    let cx = rng.next_f64() * h as f64;
    let cy = rng.next_f64() * w as f64;
    let ax = 0.5 + rng.next_f64();
    let ay = 0.5 + rng.next_f64();
    let scale = 1.0 / (h * h + w * w) as f64;
    Matrix::from_fn(1, h * w, |_, i| {
        let (y, x) = ((i / w) as f64, (i % w) as f64);
        let d = ax * (y - cx) * (y - cx) + ay * (x - cy) * (x - cy);
        0.15 + 0.8 * (-d * scale * 8.0).exp()
    })
}

/// Fingerprint-like: sinusoidal ridges with random orientation and phase.
fn ridges(spec: &DatasetSpec, rng: &mut Mt19937) -> Matrix<f64> {
    let (h, w) = (spec.height, spec.width);
    let theta = rng.next_f64() * std::f64::consts::PI;
    let freq = 0.15 + rng.next_f64() * 0.25;
    let phase = rng.next_f64() * std::f64::consts::TAU;
    let (s, c) = theta.sin_cos();
    Matrix::from_fn(1, h * w, |_, i| {
        let (y, x) = ((i / w) as f64, (i % w) as f64);
        let t = (x * c + y * s) * freq + phase;
        0.5 + 0.5 * t.sin()
    })
}

/// CIFAR-like: per-channel value noise with strong horizontal correlation.
fn correlated_color(spec: &DatasetSpec, rng: &mut Mt19937) -> Matrix<f64> {
    let (h, w) = (spec.height, spec.width);
    let mut img = Matrix::zeros(spec.channels, h * w);
    for ch in 0..spec.channels {
        let mut v = rng.next_f64();
        for i in 0..h * w {
            // AR(1) smoothing keeps neighboring pixels correlated.
            v = 0.85 * v + 0.15 * rng.next_f64();
            img[(ch, i)] = v;
        }
    }
    img
}

/// SYNTHETIC: uniform random in `[0, 1]`.
fn uniform(spec: &DatasetSpec, rng: &mut Mt19937) -> Matrix<f64> {
    Matrix::from_fn(spec.channels, spec.height * spec.width, |_, _| rng.next_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_shapes() {
        assert_eq!(DatasetKind::Mnist.spec().features(), 784);
        assert_eq!(DatasetKind::VggFace2.spec().features(), 40_000);
        assert_eq!(DatasetKind::Nist.spec().features(), 262_144);
        assert_eq!(DatasetKind::Cifar10.spec().features(), 3_072);
        assert_eq!(DatasetKind::Synthetic.spec().features(), 2_048);
        assert_eq!(DatasetKind::Mnist.spec().train_samples, 60_000);
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in [DatasetKind::Mnist, DatasetKind::Cifar10, DatasetKind::Synthetic] {
            let a = kind.sample_image(17, 42);
            let b = kind.sample_image(17, 42);
            assert_eq!(a, b, "{kind:?} not deterministic");
            let c = kind.sample_image(18, 42);
            assert_ne!(a, c, "{kind:?} ignores the index");
            let d = kind.sample_image(17, 43);
            assert_ne!(a, d, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn values_are_normalized() {
        for kind in DatasetKind::ALL {
            let img = kind.sample_image(3, 7);
            assert!(
                img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{kind:?} out of range"
            );
            assert_eq!(
                img.shape(),
                (kind.spec().channels, kind.spec().height * kind.spec().width)
            );
        }
    }

    #[test]
    fn mnist_is_sparse_faces_are_dense() {
        let mnist = DatasetKind::Mnist.sample_image(0, 1);
        assert!(
            mnist.zero_fraction() > 0.6,
            "MNIST stand-in must be mostly background, got {}",
            mnist.zero_fraction()
        );
        let face = DatasetKind::VggFace2.sample_image(0, 1);
        assert!(face.zero_fraction() < 0.01, "faces must be dense");
        let fp = DatasetKind::Nist.sample_image(0, 1);
        assert!(fp.zero_fraction() < 0.01, "ridges must be dense");
    }

    #[test]
    fn labels_cover_multiple_classes() {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..60 {
            seen.insert(DatasetKind::Mnist.sample_label(idx, 5));
        }
        assert!(seen.len() >= 3, "labels degenerate: {seen:?}");
        assert!(seen.iter().all(|&c| c < 10));
    }

    #[test]
    fn batch_assembles_features_and_labels() {
        let b = batch(DatasetKind::Cifar10, 8, 2, 9);
        assert_eq!(b.x.shape(), (8, 3_072));
        assert_eq!(b.y_onehot.shape(), (8, 10));
        assert_eq!(b.y_scalar.shape(), (8, 1));
        // Each row is exactly one-hot.
        for r in 0..8 {
            let ones = b.y_onehot.row(r).iter().filter(|&&v| v == 1.0).count();
            let zeros = b.y_onehot.row(r).iter().filter(|&&v| v == 0.0).count();
            assert_eq!((ones, zeros), (1, 9));
            assert!((0.0..=1.0).contains(&b.y_scalar[(r, 0)]));
        }
    }

    #[test]
    fn batches_tile_the_dataset() {
        let b0 = batch(DatasetKind::Synthetic, 4, 0, 11);
        let b1 = batch(DatasetKind::Synthetic, 4, 1, 11);
        assert_ne!(b0.x, b1.x);
        // Batch 1 sample 0 == sample index 4.
        let img4 = DatasetKind::Synthetic.sample_image(4, 11);
        assert_eq!(b1.x.row(0), img4.as_slice());
    }

    #[test]
    fn labels_are_learnable_by_linear_model() {
        // Sanity: the latent labeling must be consistent — the same image
        // always maps to the same class (pure function of content).
        for idx in [0, 5, 9] {
            let l1 = DatasetKind::Mnist.sample_label(idx, 3);
            let l2 = DatasetKind::Mnist.sample_label(idx, 3);
            assert_eq!(l1, l2);
        }
    }
}
